#include "serve/planner.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "csp/csp.h"
#include "csp/csp_sat.h"
#include "datalog/engine.h"
#include "datalog/fo_rewriter.h"
#include "datalog/rewriter.h"
#include "logic/parser.h"
#include "query/cq.h"
#include "serve/plan.h"
#include "serve/session.h"

namespace gfomq::serve {
namespace {

Ontology MustOntology(const std::string& text, const SymbolsPtr& sym) {
  auto onto = ParseOntology(text, sym);
  EXPECT_TRUE(onto.ok()) << onto.status().ToString();
  return *onto;
}

Ucq MustUcq(const std::string& text, const SymbolsPtr& sym) {
  auto q = ParseUcq(text, sym);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

std::shared_ptr<OmqPlan> MustPlan(const Ontology& onto, PlanOptions opts) {
  auto plan = OmqPlan::Compile(onto, opts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

PlanOptions Pinned(PlanBackend backend) {
  PlanOptions o;
  o.force_backend = backend;
  return o;
}

PlanOptions Assume(Certainty ptime) {
  PlanOptions o;
  o.assume_ptime = ptime;
  return o;
}

/// A random instance over the given (rel, arity) pairs.
Instance RandomDb(const SymbolsPtr& sym,
                  const std::vector<std::pair<uint32_t, int>>& rels,
                  size_t num_elems, size_t num_facts, uint64_t seed) {
  Rng rng(seed);
  Instance db(sym);
  std::vector<ElemId> es;
  for (size_t i = 0; i < num_elems; ++i) {
    es.push_back(db.AddConstant("e" + std::to_string(i)));
  }
  for (size_t i = 0; i < num_facts; ++i) {
    auto [rel, arity] = rels[rng.Below(rels.size())];
    std::vector<ElemId> args;
    for (int j = 0; j < arity; ++j) args.push_back(es[rng.Below(es.size())]);
    db.AddFact(rel, args);
  }
  return db;
}

// ---------------------------------------------------------------------------
// FO rewriter.

TEST(FoRewriterTest, HierarchyUnfoldsAndMatchesDatalogFixpoint) {
  SymbolsPtr sym = MakeSymbols();
  Ontology onto = MustOntology(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym);
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto rewrite = RewriteToDatalog(onto, q, {});
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  ASSERT_FALSE(rewrite->truncated);

  std::vector<uint32_t> edb = onto.Signature();
  FoRewriteResult fo = RewriteToUcq(rewrite->program, edb, {});
  ASSERT_TRUE(fo.ok) << "bail=" << static_cast<int>(fo.bail);
  EXPECT_GE(fo.ucq.disjuncts.size(), 3u);  // B(x) | A(x) | R(x,y)

  uint32_t rel_r = sym->Rel("R", 2);
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  DatalogEngine engine(rewrite->program);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Instance db = RandomDb(sym, {{rel_r, 2}, {rel_a, 1}, {rel_b, 1}}, 6, 12,
                           seed * 977);
    EXPECT_EQ(fo.ucq.AllAnswers(db), engine.GoalTuples(db))
        << "seed " << seed;
  }
}

TEST(FoRewriterTest, MinimizationDropsSubsumedDisjuncts) {
  SymbolsPtr sym = MakeSymbols();
  Ontology onto = MustOntology(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym);
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto rewrite = RewriteToDatalog(onto, q, {});
  ASSERT_TRUE(rewrite.ok());
  FoRewriteOptions raw;
  raw.minimize = false;
  FoRewriteResult with = RewriteToUcq(rewrite->program, onto.Signature(), {});
  FoRewriteResult without =
      RewriteToUcq(rewrite->program, onto.Signature(), raw);
  ASSERT_TRUE(with.ok);
  ASSERT_TRUE(without.ok);
  EXPECT_LE(with.ucq.disjuncts.size(), without.ucq.disjuncts.size());
  // Equivalent either way.
  uint32_t rel_r = sym->Rel("R", 2);
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Instance db = RandomDb(sym, {{rel_r, 2}, {rel_a, 1}, {rel_b, 1}}, 5, 10,
                           seed * 31);
    EXPECT_EQ(with.ucq.AllAnswers(db), without.ucq.AllAnswers(db));
  }
}

TEST(FoRewriterTest, BailsOnRecursiveProgram) {
  SymbolsPtr sym = MakeSymbols();
  auto program = ParseDatalog(
      "B(y) :- R(x,y), B(x); goal(x) :- B(x);", sym);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<uint32_t> edb = {sym->Rel("R", 2), sym->Rel("B", 1)};
  FoRewriteResult fo = RewriteToUcq(*program, edb, {});
  EXPECT_FALSE(fo.ok);
  EXPECT_EQ(fo.bail, FoRewriteResult::Bail::kRecursive);
}

TEST(FoRewriterTest, BailsOnInequalityRule) {
  SymbolsPtr sym = MakeSymbols();
  auto program = ParseDatalog(
      "goal(x) :- R(x,y), x != y;", sym);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FoRewriteResult fo = RewriteToUcq(*program, {sym->Rel("R", 2)}, {});
  EXPECT_FALSE(fo.ok);
  EXPECT_EQ(fo.bail, FoRewriteResult::Bail::kNeq);
}

TEST(FoRewriterTest, HeadVariableRepetitionMergesQueryVariables) {
  SymbolsPtr sym = MakeSymbols();
  // E2's rule head repeats a variable: unfolding goal(x,y) through it must
  // merge x and y (the rule instance forces them equal).
  auto program = ParseDatalog(
      "E2(x,x) :- A(x); goal(x,y) :- E2(x,y), B(x);", sym);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  uint32_t rel_e2 = sym->Rel("E2", 2);
  std::vector<uint32_t> edb = {rel_a, rel_b, rel_e2};
  FoRewriteResult fo = RewriteToUcq(*program, edb, {});
  ASSERT_TRUE(fo.ok) << "bail=" << static_cast<int>(fo.bail);
  DatalogEngine engine(*program);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Instance db = RandomDb(sym, {{rel_a, 1}, {rel_b, 1}, {rel_e2, 2}}, 5, 10,
                           seed * 131);
    EXPECT_EQ(fo.ucq.AllAnswers(db), engine.GoalTuples(db))
        << "seed " << seed;
  }
}

TEST(CompiledUcqTest, MatchesInterpretedUcq) {
  SymbolsPtr sym = MakeSymbols();
  Ucq q = MustUcq("q(x) :- R(x,y), A(y); q(x) :- B(x)", sym);
  CompiledUcq compiled(q);
  uint32_t rel_r = sym->Rel("R", 2);
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Instance db = RandomDb(sym, {{rel_r, 2}, {rel_a, 1}, {rel_b, 1}}, 6, 14,
                           seed * 733);
    EXPECT_EQ(compiled.AllAnswers(db), q.AllAnswers(db)) << "seed " << seed;
    for (ElemId e = 0; e < db.NumElements(); ++e) {
      EXPECT_EQ(compiled.HasAnswer(db, {e}), q.HasAnswer(db, {e}));
    }
  }
}

// ---------------------------------------------------------------------------
// CSP/SAT backend.

Instance Clique(const SymbolsPtr& sym, int k) {
  Instance t(sym);
  uint32_t e_rel = sym->Rel("E", 2);
  std::vector<ElemId> es;
  for (int i = 0; i < k; ++i) {
    es.push_back(t.AddConstant("k" + std::to_string(i)));
  }
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i != j) {
        t.AddFact(e_rel,
                  {es[static_cast<size_t>(i)], es[static_cast<size_t>(j)]});
      }
    }
  }
  return t;
}

TEST(CspSatTest, DifferentialAgainstBacktrackingSolver) {
  SymbolsPtr sym = MakeSymbols();
  auto enc = EncodeTemplate(Clique(sym, 3), CspEncodingVariant::kEquality);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  CspSatSolver solver(enc->Index());
  uint32_t e_rel = sym->Rel("E", 2);
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Instance g = RandomDb(sym, {{e_rel, 2}}, 5, 8, seed * 271);
    EXPECT_EQ(solver.Solve(g), SolveCsp(g, enc->templ)) << "seed " << seed;
  }
  CspSatStats stats = solver.stats();
  EXPECT_EQ(stats.solves, 30u);
  EXPECT_EQ(stats.sat + stats.unsat, 30u);
}

TEST(CspSatTest, PrecolouringPrunesCandidates) {
  SymbolsPtr sym = MakeSymbols();
  auto enc = EncodeTemplate(Clique(sym, 2), CspEncodingVariant::kEquality);
  ASSERT_TRUE(enc.ok());
  CspSatSolver solver(enc->Index());
  uint32_t e_rel = sym->Rel("E", 2);
  uint32_t p0 = enc->precolor_rels.at(0);
  uint32_t p1 = enc->precolor_rels.at(1);
  // A pinned edge with both endpoints forced to the same colour of K2 has
  // no homomorphism; distinct colours do.
  Instance bad(sym);
  ElemId a = bad.AddConstant("a");
  ElemId b = bad.AddConstant("b");
  bad.AddFact(e_rel, {a, b});
  bad.AddFact(p0, {a});
  bad.AddFact(p0, {b});
  EXPECT_FALSE(solver.Solve(bad));
  EXPECT_EQ(SolveCsp(bad, enc->templ), false);
  Instance good(sym);
  a = good.AddConstant("a");
  b = good.AddConstant("b");
  good.AddFact(e_rel, {a, b});
  good.AddFact(p0, {a});
  good.AddFact(p1, {b});
  EXPECT_TRUE(solver.Solve(good));
  EXPECT_EQ(SolveCsp(good, enc->templ), true);
}

TEST(CspSatTest, TemplateIndexIsBuiltOnceAndReused) {
  SymbolsPtr sym = MakeSymbols();
  auto enc = EncodeTemplate(Clique(sym, 2), CspEncodingVariant::kEquality);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->index_stats().builds, 0u);
  uint32_t e_rel = sym->Rel("E", 2);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Instance g = RandomDb(sym, {{e_rel, 2}}, 4, 5, seed * 613);
    SolveCspSat(g, *enc);  // each call fetches the cached index
  }
  CspIndexStats stats = enc->index_stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.reuses, 4u);
}

// ---------------------------------------------------------------------------
// Planner decisions.

TEST(PlannerTest, TruncatedRewritingFallsBackToTableau) {
  SymbolsPtr sym = MakeSymbols();
  // The ternary guard forces RewriteToDatalog to truncate its decoration
  // pools; a truncated program may be incomplete, so even a PTIME verdict
  // must not serve it — regression for the bug where OmqPlan did.
  Ontology onto =
      MustOntology("forall x, y, z (T(x,y,z) -> A(x));", sym);
  auto plan = MustPlan(onto, Assume(Certainty::kYes));
  auto compiled = plan->CompileQuery(MustUcq("q(x) :- A(x)", sym));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE((*compiled)->truncated);
  EXPECT_EQ((*compiled)->backend, PlanBackend::kTableau);
  EXPECT_EQ(plan->planner_stats().truncated_fallbacks, 1u);
  // The fallback is complete: the guard still derives A(a).
  Session session(plan);
  ASSERT_TRUE(
      session.RegisterQuery("q", MustUcq("q(x) :- A(x)", sym)).ok());
  ElemId a = session.AddConstant("a");
  ElemId b = session.AddConstant("b");
  ElemId c = session.AddConstant("c");
  ASSERT_TRUE(session.Assert(Fact{sym->Rel("T", 3), {a, b, c}}).ok());
  auto answers = session.Answers("q");
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->count({a}));
}

TEST(PlannerTest, LookupQueryPicksFoRewrite) {
  SymbolsPtr sym = MakeSymbols();
  Ontology onto = MustOntology(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym);
  auto plan = MustPlan(onto, Assume(Certainty::kYes));
  auto compiled = plan->CompileQuery(MustUcq("q(x) :- B(x)", sym));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ((*compiled)->backend, PlanBackend::kFoRewrite);
  EXPECT_GT((*compiled)->fo_disjuncts, 0u);
  PlannerStats stats = plan->planner_stats();
  EXPECT_EQ(stats.chosen[static_cast<size_t>(PlanBackend::kFoRewrite)], 1u);
  EXPECT_EQ(stats.fo_built, 1u);
}

TEST(PlannerTest, RecursiveFamilyFallsBackToDatalog) {
  SymbolsPtr sym = MakeSymbols();
  // R propagates A_1 along edges: the rewriting is genuinely recursive, so
  // the FO unfolding bails and the fixpoint backend wins.
  Ontology onto = MustOntology(
      "forall x . (A0(x) -> A1(x)); "
      "forall x, y (R(x,y) -> (A1(x) -> A1(y)));",
      sym);
  auto plan = MustPlan(onto, Assume(Certainty::kYes));
  auto compiled = plan->CompileQuery(MustUcq("q(x) :- A1(x)", sym));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ((*compiled)->backend, PlanBackend::kDatalogRewrite);
  PlannerStats stats = plan->planner_stats();
  EXPECT_EQ(stats.fo_bailed, 1u);
}

TEST(PlannerTest, CspEncodingEnablesSatBackend) {
  SymbolsPtr sym = MakeSymbols();
  auto enc = EncodeTemplate(Clique(sym, 2), CspEncodingVariant::kEquality);
  ASSERT_TRUE(enc.ok());
  PlanOptions opts = Assume(Certainty::kNo);
  opts.csp_encoding = std::make_shared<const CspEncoding>(*enc);
  auto plan = MustPlan(enc->ontology, opts);
  Cq q;
  q.symbols = sym;
  q.num_vars = 1;
  q.answer_vars = {0};
  q.atoms = {{enc->query_rel, {0}}};
  auto compiled = plan->CompileQuery(Ucq::Single(q));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ((*compiled)->backend, PlanBackend::kCspSat);
  // A query over an ontology-constrained relation is not eligible.
  Cq q2;
  q2.symbols = sym;
  q2.num_vars = 2;
  q2.answer_vars = {0};
  q2.atoms = {{sym->Rel("E", 2), {0, 1}}};
  EXPECT_FALSE(plan->CspEligible(Ucq::Single(q2)));
}

TEST(PlannerTest, ForceBackendStillOverrides) {
  SymbolsPtr sym = MakeSymbols();
  Ontology onto = MustOntology(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym);
  auto plan = MustPlan(onto, Pinned(PlanBackend::kTableau));
  auto compiled = plan->CompileQuery(MustUcq("q(x) :- B(x)", sym));
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ((*compiled)->backend, PlanBackend::kTableau);

  // Pinning FO on a recursive family is an error, not a silent fallback.
  Ontology recursive = MustOntology(
      "forall x . (A0(x) -> A1(x)); "
      "forall x, y (R(x,y) -> (A1(x) -> A1(y)));",
      sym);
  auto fo_plan = MustPlan(recursive, Pinned(PlanBackend::kFoRewrite));
  EXPECT_FALSE(fo_plan->CompileQuery(MustUcq("q(x) :- A1(x)", sym)).ok());

  // Pinning CSP/SAT without an encoding is an error.
  auto csp_plan = MustPlan(onto, Pinned(PlanBackend::kCspSat));
  EXPECT_FALSE(csp_plan->CompileQuery(MustUcq("q(x) :- B(x)", sym)).ok());
}

TEST(BackendCostModelTest, EwmaTracksObservedLatencies) {
  BackendCostModel model;
  EXPECT_EQ(model.Samples(PlanBackend::kFoRewrite), 0u);
  EXPECT_DOUBLE_EQ(model.Score(PlanBackend::kFoRewrite, 42.0), 42.0);
  model.Record(PlanBackend::kFoRewrite, 100.0);
  EXPECT_DOUBLE_EQ(model.Ewma(PlanBackend::kFoRewrite), 100.0);
  model.Record(PlanBackend::kFoRewrite, 200.0);
  EXPECT_DOUBLE_EQ(model.Ewma(PlanBackend::kFoRewrite), 125.0);  // α = 0.25
  // Once sampled, the measured EWMA replaces the static estimate.
  EXPECT_DOUBLE_EQ(model.Score(PlanBackend::kFoRewrite, 42.0), 125.0);
  EXPECT_EQ(model.Samples(PlanBackend::kTableau), 0u);
}

TEST(PlannerTest, ChooseBackendPrefersCompleteCheapest) {
  BackendCostModel model;
  PlannerInputs in;
  in.ontology_sentences = 2;
  in.ptime_complete = true;
  in.fo_ok = true;
  in.fo_disjuncts = 3;
  in.fo_atoms = 4;
  in.rewrite_rules = 10;
  PlannerDecision d = ChooseBackend(in, model);
  EXPECT_EQ(d.backend, PlanBackend::kFoRewrite);
  EXPECT_FALSE(d.truncated_fallback);

  // Truncation removes datalog AND fo from the candidate set.
  in.rewrite_truncated = true;
  d = ChooseBackend(in, model);
  EXPECT_EQ(d.backend, PlanBackend::kTableau);
  EXPECT_TRUE(d.truncated_fallback);

  // A recorded tableau latency cheaper than the FO estimate flips the
  // choice: measured beats static.
  in.rewrite_truncated = false;
  model.Record(PlanBackend::kTableau, 1.0);
  d = ChooseBackend(in, model);
  EXPECT_EQ(d.backend, PlanBackend::kTableau);
}

// ---------------------------------------------------------------------------
// Cross-backend differential storms through Session.

struct StormRig {
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<std::string> labels;
};

void RunStorm(StormRig* rig,
              const std::vector<std::pair<uint32_t, int>>& rels,
              size_t num_elems, size_t steps, uint64_t seed) {
  std::vector<std::vector<ElemId>> elems(rig->sessions.size());
  for (size_t s = 0; s < rig->sessions.size(); ++s) {
    for (size_t i = 0; i < num_elems; ++i) {
      elems[s].push_back(
          rig->sessions[s]->AddConstant("e" + std::to_string(i)));
    }
  }
  Rng rng(seed);
  for (size_t step = 0; step < steps; ++step) {
    auto [rel, arity] = rels[rng.Below(rels.size())];
    std::vector<size_t> idx;
    for (int j = 0; j < arity; ++j) idx.push_back(rng.Below(num_elems));
    bool is_assert = rng.Chance(0.65);
    for (size_t s = 0; s < rig->sessions.size(); ++s) {
      std::vector<ElemId> args;
      for (size_t j : idx) args.push_back(elems[s][j]);
      Fact f{rel, args};
      auto r = is_assert ? rig->sessions[s]->Assert(f)
                         : rig->sessions[s]->Retract(f);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    auto reference = rig->sessions[0]->Answers("q");
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (size_t s = 1; s < rig->sessions.size(); ++s) {
      auto answers = rig->sessions[s]->Answers("q");
      ASSERT_TRUE(answers.ok()) << answers.status().ToString();
      EXPECT_EQ(*reference, *answers)
          << "step " << step << ": " << rig->labels[0] << " vs "
          << rig->labels[s];
    }
  }
}

TEST(PlannerDifferentialTest, LookupFamilyAllBackendsAgree) {
  SymbolsPtr sym = MakeSymbols();
  const std::string text =
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));";
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  StormRig rig;
  for (auto [label, opts] :
       std::vector<std::pair<std::string, PlanOptions>>{
           {"planner", Assume(Certainty::kYes)},
           {"fo", Pinned(PlanBackend::kFoRewrite)},
           {"datalog", Pinned(PlanBackend::kDatalogRewrite)},
           {"tableau", Pinned(PlanBackend::kTableau)}}) {
    auto plan = MustPlan(MustOntology(text, sym), opts);
    rig.sessions.push_back(std::make_unique<Session>(plan));
    rig.labels.push_back(label);
    ASSERT_TRUE(rig.sessions.back()->RegisterQuery("q", q).ok());
  }
  RunStorm(&rig,
           {{sym->Rel("R", 2), 2}, {sym->Rel("A", 1), 1},
            {sym->Rel("B", 1), 1}},
           5, 40, 0xfeed);
  // The planner chose FO for this lookup family…
  EXPECT_GT(rig.sessions[0]
                ->plan()
                ->planner_stats()
                .chosen[static_cast<size_t>(PlanBackend::kFoRewrite)],
            0u);
  // …and FO views are stateless: the storm's retracts ran no DRed.
  EXPECT_GT(rig.sessions[0]->stats().retracts, 0u);
  EXPECT_EQ(rig.sessions[0]->stats().dred_rounds, 0u);
  EXPECT_GT(rig.sessions[0]->stats().fo_evaluations, 0u);
  // The pinned datalog rig really did pay maintenance for the same storm.
  EXPECT_GT(rig.sessions[2]->stats().dred_rounds, 0u);
}

TEST(PlannerDifferentialTest, RecursiveFamilyAllBackendsAgree) {
  SymbolsPtr sym = MakeSymbols();
  const std::string text =
      "forall x . (A0(x) -> A1(x)); "
      "forall x, y (R(x,y) -> (A1(x) -> A1(y)));";
  Ucq q = MustUcq("q(x) :- A1(x)", sym);
  StormRig rig;
  for (auto [label, opts] :
       std::vector<std::pair<std::string, PlanOptions>>{
           {"planner", Assume(Certainty::kYes)},
           {"datalog", Pinned(PlanBackend::kDatalogRewrite)},
           {"tableau", Pinned(PlanBackend::kTableau)}}) {
    auto plan = MustPlan(MustOntology(text, sym), opts);
    rig.sessions.push_back(std::make_unique<Session>(plan));
    rig.labels.push_back(label);
    ASSERT_TRUE(rig.sessions.back()->RegisterQuery("q", q).ok());
  }
  RunStorm(&rig,
           {{sym->Rel("R", 2), 2}, {sym->Rel("A0", 1), 1},
            {sym->Rel("A1", 1), 1}},
           5, 30, 0xbeef);
  EXPECT_GT(rig.sessions[0]
                ->plan()
                ->planner_stats()
                .chosen[static_cast<size_t>(PlanBackend::kDatalogRewrite)],
            0u);
}

TEST(PlannerDifferentialTest, CspFamilyAgreesWithTableau) {
  SymbolsPtr sym = MakeSymbols();
  auto enc = EncodeTemplate(Clique(sym, 2), CspEncodingVariant::kEquality);
  ASSERT_TRUE(enc.ok());
  auto shared_enc = std::make_shared<const CspEncoding>(*enc);
  Cq qcq;
  qcq.symbols = sym;
  qcq.num_vars = 1;
  qcq.answer_vars = {0};
  qcq.atoms = {{enc->query_rel, {0}}};
  Ucq q = Ucq::Single(qcq);

  PlanOptions planner_opts = Assume(Certainty::kNo);
  planner_opts.csp_encoding = shared_enc;
  StormRig rig;
  for (auto [label, opts] :
       std::vector<std::pair<std::string, PlanOptions>>{
           {"planner", planner_opts},
           {"tableau", Pinned(PlanBackend::kTableau)}}) {
    auto plan = MustPlan(enc->ontology, opts);
    rig.sessions.push_back(std::make_unique<Session>(plan));
    rig.labels.push_back(label);
    ASSERT_TRUE(rig.sessions.back()->RegisterQuery("q", q).ok());
  }
  // Edge churn over 4 nodes flips 2-colourability back and forth (odd
  // cycles appear and dissolve); N facts give the consistent states
  // non-trivial answers.
  RunStorm(&rig, {{sym->Rel("E", 2), 2}, {enc->query_rel, 1}}, 4, 25,
           0xc01d);
  EXPECT_GT(rig.sessions[0]->stats().csp_sat_solves, 0u);
  PlannerStats stats = rig.sessions[0]->plan()->planner_stats();
  EXPECT_GT(stats.chosen[static_cast<size_t>(PlanBackend::kCspSat)], 0u);
  EXPECT_GT(stats.csp_solves, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (tsan tier: suite name matches the preset filter).

TEST(PlannerConcurrencyTest, SharedPlanCompilesAndRecordsConcurrently) {
  SymbolsPtr sym = MakeSymbols();
  Ontology onto = MustOntology(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym);
  auto plan = MustPlan(onto, Assume(Certainty::kYes));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  uint32_t rel_b = sym->Rel("B", 1);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Session session(plan);
      EXPECT_TRUE(session.RegisterQuery("q", q).ok());
      ElemId e = session.AddConstant("t" + std::to_string(t));
      for (int i = 0; i < 25; ++i) {
        auto compiled = plan->CompileQuery(q);
        EXPECT_TRUE(compiled.ok());
        plan->RecordAnswerLatency((*compiled)->backend,
                                  static_cast<double>(i + 1));
        ASSERT_TRUE(session.Assert(Fact{rel_b, {e}}).ok());
        auto answers = session.Answers("q");
        ASSERT_TRUE(answers.ok());
        EXPECT_TRUE(answers->count({e}));
        ASSERT_TRUE(session.Retract(Fact{rel_b, {e}}).ok());
        (void)plan->planner_stats();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(plan->cost_model().Samples(PlanBackend::kFoRewrite), 1u);
}

}  // namespace
}  // namespace gfomq::serve
