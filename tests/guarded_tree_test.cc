#include "instance/guarded_tree.h"

#include <gtest/gtest.h>

namespace gfomq {
namespace {

class GuardedTreeTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t R = sym->Rel("R", 2);
  uint32_t Q3 = sym->Rel("Q", 3);
};

TEST_F(GuardedTreeTest, PathIsDecomposable) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  EXPECT_TRUE(IsGuardedTreeDecomposable(d));
  std::vector<ElemId> root{a, b};
  auto td = BuildGuardedTreeDecomposition(d, &root);
  ASSERT_TRUE(td.has_value());
  EXPECT_TRUE(td->Validate(d, /*connected=*/true));
  EXPECT_EQ(td->nodes[0].bag, root);
}

TEST_F(GuardedTreeTest, TriangleWithoutGuardIsNotDecomposable) {
  // Example 4 of the paper: R(x,y), R(y,z), R(z,x) is not guarded tree
  // decomposable...
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  d.AddFact(R, {c, a});
  EXPECT_FALSE(IsGuardedTreeDecomposable(d));
  // ... but adding the guard Q(x,y,z) makes it decomposable.
  d.AddFact(Q3, {a, b, c});
  EXPECT_TRUE(IsGuardedTreeDecomposable(d));
  std::vector<ElemId> root{a};
  auto td = BuildGuardedTreeDecomposition(d, &root);
  ASSERT_TRUE(td.has_value());
  EXPECT_TRUE(td->Validate(d, /*connected=*/true));
}

TEST_F(GuardedTreeTest, SingletonRootOfTree) {
  // Star: R(a,b), R(a,c) rooted at {a}.
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {a, c});
  std::vector<ElemId> root{a};
  auto td = BuildGuardedTreeDecomposition(d, &root);
  ASSERT_TRUE(td.has_value());
  EXPECT_TRUE(td->Validate(d, /*connected=*/true));
  ASSERT_EQ(td->nodes[0].bag, root);
}

TEST_F(GuardedTreeTest, DisconnectedRootedDecompositionFails) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  ElemId e = d.AddConstant("e");
  d.AddFact(R, {a, b});
  d.AddFact(R, {c, e});  // separate component
  std::vector<ElemId> root{a, b};
  EXPECT_FALSE(BuildGuardedTreeDecomposition(d, &root).has_value());
  // Unrooted (forest) decomposability still holds.
  EXPECT_TRUE(IsGuardedTreeDecomposable(d));
}

TEST_F(GuardedTreeTest, LongCycleIsNotDecomposable) {
  Instance d(sym);
  std::vector<ElemId> es;
  for (int i = 0; i < 6; ++i) {
    es.push_back(d.AddConstant("v" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    d.AddFact(R, {es[static_cast<size_t>(i)],
                  es[static_cast<size_t>((i + 1) % 6)]});
  }
  EXPECT_FALSE(IsGuardedTreeDecomposable(d));
}

TEST_F(GuardedTreeTest, UnguardedRootBagIsRejected) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  std::vector<ElemId> root{a, c};  // not guarded
  EXPECT_FALSE(BuildGuardedTreeDecomposition(d, &root).has_value());
}

}  // namespace
}  // namespace gfomq
