#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/engine.h"
#include "datalog/rewriter.h"
#include "logic/parser.h"

namespace gfomq {
namespace {

TEST(DatalogTest, ParseAndValidate) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "B(x) :- A(x);"
      "goal(x) :- R(x,y), B(y), x != y;",
      sym);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->rules.size(), 2u);
  EXPECT_FALSE(prog->IsPlainDatalog());
  EXPECT_GE(prog->goal_rel, 0);
}

TEST(DatalogTest, RejectsUnboundHeadVariable) {
  SymbolsPtr sym = MakeSymbols();
  EXPECT_FALSE(ParseDatalog("B(x) :- A(y);", sym).ok());
}

// Regression: peek() used to skip whitespace but not `#` comments, so a
// comment line between an atom and the following `,` (or between argument
// and `,` inside an atom) failed the parse.
TEST(DatalogTest, ParsesCommentBetweenBodyAtoms) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "goal(x) :- A(x) # the guard atom\n"
      ", B(x);",
      sym);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_EQ(prog->rules.size(), 1u);
  EXPECT_EQ(prog->rules[0].body.size(), 2u);
}

TEST(DatalogTest, ParsesCommentInsideArgumentList) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "T(x,y) :- R(x # first arg\n"
      ", y);",
      sym);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->rules[0].body[0].vars.size(), 2u);
}

TEST(DatalogTest, ParsesCommentsAroundRules) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "# transitive closure\n"
      "T(x,y) :- R(x,y); # base\n"
      "T(x,z) :- T(x,y) # step\n"
      ", R(y,z);\n"
      "# trailing comment\n",
      sym);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog->rules.size(), 2u);
}

TEST(DatalogTest, TransitiveClosure) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "T(x,y) :- R(x,y);"
      "T(x,z) :- T(x,y), R(y,z);",
      sym);
  ASSERT_TRUE(prog.ok());
  Instance d(sym);
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  uint32_t T = static_cast<uint32_t>(sym->FindRel("T"));
  std::vector<ElemId> es;
  for (int i = 0; i < 6; ++i) {
    es.push_back(d.AddConstant("e" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < 6; ++i) {
    d.AddFact(R, {es[static_cast<size_t>(i)], es[static_cast<size_t>(i + 1)]});
  }
  DatalogEngine engine(*prog);
  Instance out = engine.Evaluate(d);
  EXPECT_TRUE(out.HasFact(T, {es[0], es[5]}));
  EXPECT_FALSE(out.HasFact(T, {es[5], es[0]}));
  // 15 pairs in the closure of a 6-chain.
  int count = 0;
  for (const Fact& f : out.facts()) {
    if (f.rel == T) ++count;
  }
  EXPECT_EQ(count, 15);
}

TEST(DatalogTest, InequalityFiltersMatches) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog("goal(x) :- R(x,y), x != y;", sym);
  ASSERT_TRUE(prog.ok());
  Instance d(sym);
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(R, {a, a});
  d.AddFact(R, {b, a});
  DatalogEngine engine(*prog);
  auto goals = engine.GoalTuples(d);
  ASSERT_EQ(goals.size(), 1u);
  EXPECT_EQ(*goals.begin(), std::vector<ElemId>{b});
}

TEST(DatalogTest, SemiNaiveMatchesNaiveOnRandomGraphs) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog(
      "T(x,y) :- R(x,y);"
      "T(x,z) :- T(x,y), T(y,z);",
      sym);
  ASSERT_TRUE(prog.ok());
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  uint32_t T = static_cast<uint32_t>(sym->FindRel("T"));
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Instance d(sym);
    std::vector<ElemId> es;
    for (int i = 0; i < 7; ++i) {
      es.push_back(d.AddConstant("x" + std::to_string(trial) + "_" +
                                 std::to_string(i)));
    }
    for (ElemId u : es) {
      for (ElemId v : es) {
        if (rng.Chance(0.2)) d.AddFact(R, {u, v});
      }
    }
    DatalogEngine engine(*prog);
    Instance out = engine.Evaluate(d);
    // Reference: Floyd–Warshall reachability over the R edges.
    size_t n = d.NumElements();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (const Fact& f : d.facts()) {
      if (f.rel == R) reach[f.args[0]][f.args[1]] = true;
    }
    for (size_t k = 0; k < n; ++k) {
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
          if (reach[i][k] && reach[k][j]) reach[i][j] = true;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(out.HasFact(T, {static_cast<ElemId>(i),
                                  static_cast<ElemId>(j)}),
                  reach[i][j])
            << "trial " << trial << " i=" << i << " j=" << j;
      }
    }
  }
}

// Differential suite: the indexed engine must be bit-identical to the
// retained naive reference — same fixpoints, same goal tuples — on seeded
// random instances across programs exercising recursion, inequality
// filters, repeated variables and multi-atom bodies.
TEST(DatalogTest, IndexedEngineMatchesNaiveOnRandomInstances) {
  const char* programs[] = {
      "T(x,y) :- R(x,y); T(x,z) :- T(x,y), R(y,z);",
      "goal(x) :- R(x,y), A(y), x != y;",
      "B(x) :- A(x); C(x) :- B(x), R(x,x); goal(x) :- C(x);",
      "P(x,z) :- R(x,y), R(y,z), A(x); goal(x) :- P(x,x);",
  };
  uint64_t seed = 17;
  for (const char* text : programs) {
    SymbolsPtr sym = MakeSymbols();
    auto prog = ParseDatalog(text, sym);
    ASSERT_TRUE(prog.ok()) << text << ": " << prog.status().ToString();
    uint32_t A = sym->Rel("A", 1);
    uint32_t R = sym->Rel("R", 2);
    for (int trial = 0; trial < 6; ++trial) {
      Rng rng(seed++);
      Instance d(sym);
      std::vector<ElemId> es;
      for (int i = 0; i < 6; ++i) {
        es.push_back(d.AddConstant("d" + std::to_string(trial) + "_" +
                                   std::to_string(i)));
      }
      for (ElemId e : es) {
        if (rng.Chance(0.4)) d.AddFact(A, {e});
      }
      for (ElemId u : es) {
        for (ElemId v : es) {
          if (rng.Chance(0.25)) d.AddFact(R, {u, v});
        }
      }
      DatalogEngine indexed(*prog, DatalogEvalMode::kIndexed);
      DatalogEngine naive(*prog, DatalogEvalMode::kNaive);
      Instance out_indexed = indexed.Evaluate(d);
      Instance out_naive = naive.Evaluate(d);
      EXPECT_EQ(out_indexed.facts(), out_naive.facts())
          << "program: " << text << " trial " << trial;
      EXPECT_EQ(indexed.GoalTuples(d), naive.GoalTuples(d))
          << "program: " << text << " trial " << trial;
    }
  }
}

TEST(DatalogTest, DeltaDispatchSkipsUnreachableRules) {
  SymbolsPtr sym = MakeSymbols();
  // The S-rule can never fire: no S fact ever exists in the input or is
  // derivable, so delta dispatch must prune it every round.
  auto prog = ParseDatalog(
      "T(x,y) :- R(x,y); T(x,z) :- T(x,y), R(y,z); B(x) :- S(x,x);", sym);
  ASSERT_TRUE(prog.ok());
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  DatalogEngine engine(*prog);
  engine.Evaluate(d);
  const DatalogStats& st = engine.stats();
  EXPECT_GT(st.iterations, 0u);
  EXPECT_GT(st.rules_skipped, 0u);
  EXPECT_GT(st.rules_dispatched, 0u);
  EXPECT_GT(st.match.index_lookups + st.match.relation_scans, 0u);
  ASSERT_EQ(st.per_rule_firings.size(), 3u);
  EXPECT_GT(st.per_rule_firings[0], 0u);
  EXPECT_EQ(st.per_rule_firings[2], 0u);  // the S-rule never fired
}

TEST(DatalogTest, GoalTuplesCachesLastEvaluation) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog("goal(x) :- A(x); A(x) :- B(x);", sym);
  ASSERT_TRUE(prog.ok());
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(B, {a});
  DatalogEngine engine(*prog);
  auto first = engine.GoalTuples(d);
  EXPECT_EQ(engine.evaluations(), 1u);
  EXPECT_EQ(engine.goal_cache_hits(), 0u);
  uint64_t iterations = engine.stats().iterations;
  // Same input: answered from the cache, stats untouched.
  auto second = engine.GoalTuples(d);
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.evaluations(), 1u);
  EXPECT_EQ(engine.goal_cache_hits(), 1u);
  EXPECT_EQ(engine.stats().iterations, iterations);
  // An equal copy also hits (cache keys on contents, not identity).
  Instance d2 = d;
  EXPECT_EQ(engine.GoalTuples(d2), first);
  EXPECT_EQ(engine.goal_cache_hits(), 2u);
  // A changed input re-saturates.
  ElemId b = d.AddConstant("b");
  d.AddFact(B, {b});
  auto third = engine.GoalTuples(d);
  EXPECT_EQ(engine.evaluations(), 2u);
  EXPECT_EQ(third.size(), 2u);
  // And removal is detected too.
  d.RemoveFact(Fact{B, {b}});
  EXPECT_NE(engine.GoalTuples(d), third);
  EXPECT_EQ(engine.evaluations(), 3u);
}

TEST(DatalogTest, GoalCacheWarmProbeIsRevisionCompareNotScan) {
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog("goal(x) :- B(x);", sym);
  ASSERT_TRUE(prog.ok());
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  Instance d(sym);
  for (int i = 0; i < 50; ++i) {
    d.AddFact(B, {d.AddConstant("e" + std::to_string(i))});
  }
  DatalogEngine engine(*prog);
  engine.GoalTuples(d);
  // The warm probe keys on Instance::revision(), the O(1) validity token —
  // a hit must leave the engine's match counters untouched (the old
  // SameDatabase probe walked both fact sets on every call).
  uint64_t lookups = engine.stats().match.index_lookups;
  uint64_t scans = engine.stats().match.relation_scans;
  uint64_t iterations = engine.stats().iterations;
  for (int i = 0; i < 10; ++i) engine.GoalTuples(d);
  EXPECT_EQ(engine.goal_cache_hits(), 10u);
  EXPECT_EQ(engine.stats().match.index_lookups, lookups);
  EXPECT_EQ(engine.stats().match.relation_scans, scans);
  EXPECT_EQ(engine.stats().iterations, iterations);
  EXPECT_EQ(engine.evaluations(), 1u);
}

TEST(DatalogTest, GoalCacheDetectsDivergentCopies) {
  // Regression for the revision-token design: d2 starts as a copy of d
  // (same stamp), then BOTH mutate. A per-instance counter could restamp
  // them to the same value; the global counter cannot.
  SymbolsPtr sym = MakeSymbols();
  auto prog = ParseDatalog("goal(x) :- B(x);", sym);
  ASSERT_TRUE(prog.ok());
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  Instance d2 = d;
  d.AddFact(B, {a});
  d2.AddFact(B, {b});
  DatalogEngine engine(*prog);
  auto first = engine.GoalTuples(d);
  EXPECT_EQ(first, std::set<std::vector<ElemId>>{{a}});
  auto second = engine.GoalTuples(d2);
  EXPECT_EQ(second, std::set<std::vector<ElemId>>{{b}});
  EXPECT_EQ(engine.evaluations(), 2u);
  EXPECT_EQ(engine.goal_cache_hits(), 0u);
}

TEST(DatalogTest, RewriterHornSubsumptionChain) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x)); forall x . (B(x) -> C(x));", sym);
  ASSERT_TRUE(onto.ok());
  auto q = ParseCq("q(x) :- C(x)", sym);
  ASSERT_TRUE(q.ok());
  auto rewrite = RewriteToDatalog(*onto, Ucq::Single(*q));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  d.AddFact(static_cast<uint32_t>(sym->FindRel("C")), {b});
  DatalogEngine engine(rewrite->program);
  auto goals = engine.GoalTuples(d);
  EXPECT_EQ(goals.size(), 2u);
  EXPECT_TRUE(goals.count({a}));
  EXPECT_TRUE(goals.count({b}));
}

TEST(DatalogTest, RewriterExistentialQueryHook) {
  // A ⊑ ∃R.B with q() :- R(x,y), B(y): the match lives in the anonymous
  // part, captured by a configuration goal rule.
  SymbolsPtr sym = MakeSymbols();
  auto onto =
      ParseOntology("forall x . (A(x) -> exists y (R(x,y) & B(y)));", sym);
  ASSERT_TRUE(onto.ok());
  auto q = ParseCq("q() :- R(x,y), B(y)", sym);
  ASSERT_TRUE(q.ok());
  auto rewrite = RewriteToDatalog(*onto, Ucq::Single(*q));
  ASSERT_TRUE(rewrite.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  DatalogEngine engine(rewrite->program);
  EXPECT_EQ(engine.GoalTuples(d).size(), 1u);
  // And a negative control: no A fact, no goal.
  Instance d2(sym);
  ElemId c = d2.AddConstant("c");
  d2.AddFact(static_cast<uint32_t>(sym->FindRel("B")), {c});
  EXPECT_TRUE(engine.GoalTuples(d2).empty());
}

TEST(DatalogTest, RewriterInconsistencyMakesEverythingCertain) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology("forall x . (A(x) & B(x) -> false);", sym);
  ASSERT_TRUE(onto.ok());
  auto q = ParseCq("q(x) :- Z(x)", sym);
  ASSERT_TRUE(q.ok());
  auto rewrite = RewriteToDatalog(*onto, Ucq::Single(*q));
  ASSERT_TRUE(rewrite.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  d.AddFact(static_cast<uint32_t>(sym->FindRel("B")), {a});
  d.AddFact(static_cast<uint32_t>(sym->FindRel("Z")), {b});
  DatalogEngine engine(rewrite->program);
  auto goals = engine.GoalTuples(d);
  // Inconsistent: every element is an answer.
  EXPECT_EQ(goals.size(), d.NumElements());
}

TEST(DatalogTest, RewriterSoundnessOnRandomHornInstances) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x));"
      "forall x, y (R(x,y) -> (B(x) -> B(y)));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  auto rewrite = RewriteToDatalog(*onto, Ucq::Single(*q));
  ASSERT_TRUE(rewrite.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Instance d(sym);
    std::vector<ElemId> es;
    for (int i = 0; i < 5; ++i) {
      es.push_back(d.AddConstant("t" + std::to_string(trial) + "_" +
                                 std::to_string(i)));
    }
    for (ElemId e : es) {
      if (rng.Chance(0.3)) d.AddFact(A, {e});
    }
    for (ElemId u : es) {
      for (ElemId v : es) {
        if (rng.Chance(0.25)) d.AddFact(R, {u, v});
      }
    }
    DatalogEngine engine(rewrite->program);
    auto goals = engine.GoalTuples(d);
    auto certain = solver->CertainAnswers(d, Ucq::Single(*q));
    EXPECT_EQ(goals, certain) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gfomq
