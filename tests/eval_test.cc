#include "instance/eval.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace gfomq {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t B = sym->Rel("B", 1);
  uint32_t R = sym->Rel("R", 2);
  uint32_t x = sym->Var("x");
  uint32_t y = sym->Var("y");

  Instance MakeEdge() {
    Instance d(sym);
    ElemId a = d.AddConstant("a");
    ElemId b = d.AddConstant("b");
    d.AddFact(R, {a, b});
    d.AddFact(A, {a});
    d.AddFact(B, {b});
    return d;
  }
};

TEST_F(EvalTest, AtomsAndBooleans) {
  Instance d = MakeEdge();
  std::map<uint32_t, ElemId> env{{x, 0}};
  EXPECT_TRUE(EvalFormula(*Formula::Atom(A, {x}), d, env));
  EXPECT_FALSE(EvalFormula(*Formula::Atom(B, {x}), d, env));
  EXPECT_TRUE(EvalFormula(*Formula::Not(Formula::Atom(B, {x})), d, env));
  EXPECT_TRUE(EvalFormula(
      *Formula::Or(Formula::Atom(A, {x}), Formula::Atom(B, {x})), d, env));
  EXPECT_FALSE(EvalFormula(
      *Formula::And(Formula::Atom(A, {x}), Formula::Atom(B, {x})), d, env));
}

TEST_F(EvalTest, GuardedQuantifiers) {
  Instance d = MakeEdge();
  std::map<uint32_t, ElemId> env{{x, 0}};
  FormulaPtr ex = Formula::Exists({y}, Formula::Atom(R, {x, y}),
                                  Formula::Atom(B, {y}));
  EXPECT_TRUE(EvalFormula(*ex, d, env));
  FormulaPtr fa = Formula::Forall({y}, Formula::Atom(R, {x, y}),
                                  Formula::Atom(A, {y}));
  EXPECT_FALSE(EvalFormula(*fa, d, env));
  // Vacuous universal at the sink element.
  std::map<uint32_t, ElemId> env_b{{x, 1}};
  EXPECT_TRUE(EvalFormula(*fa, d, env_b));
}

TEST_F(EvalTest, CountingQuantifiers) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  for (int i = 0; i < 3; ++i) {
    d.AddFact(R, {a, d.AddConstant("w" + std::to_string(i))});
  }
  std::map<uint32_t, ElemId> env{{x, a}};
  EXPECT_TRUE(EvalFormula(
      *Formula::CountQ(true, 3, y, Formula::Atom(R, {x, y}), Formula::True()),
      d, env));
  EXPECT_FALSE(EvalFormula(
      *Formula::CountQ(true, 4, y, Formula::Atom(R, {x, y}), Formula::True()),
      d, env));
  EXPECT_TRUE(EvalFormula(
      *Formula::CountQ(false, 3, y, Formula::Atom(R, {x, y}),
                       Formula::True()),
      d, env));
  EXPECT_FALSE(EvalFormula(
      *Formula::CountQ(false, 2, y, Formula::Atom(R, {x, y}),
                       Formula::True()),
      d, env));
}

TEST_F(EvalTest, CountingWithMatrix) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId w0 = d.AddConstant("w0");
  ElemId w1 = d.AddConstant("w1");
  d.AddFact(R, {a, w0});
  d.AddFact(R, {a, w1});
  d.AddFact(B, {w1});
  std::map<uint32_t, ElemId> env{{x, a}};
  // Exactly one R-successor in B.
  EXPECT_TRUE(EvalFormula(
      *Formula::CountQ(true, 1, y, Formula::Atom(R, {x, y}),
                       Formula::Atom(B, {y})),
      d, env));
  EXPECT_FALSE(EvalFormula(
      *Formula::CountQ(true, 2, y, Formula::Atom(R, {x, y}),
                       Formula::Atom(B, {y})),
      d, env));
}

TEST_F(EvalTest, SentenceEvaluationMirrorsModels) {
  auto onto = ParseOntology(
      "forall x . (A(x) -> exists y (R(x,y) & B(y)));"
      "forall x, y (R(x,y) -> (A(x) -> B(y)));",
      sym);
  ASSERT_TRUE(onto.ok());
  Instance good = MakeEdge();
  EXPECT_TRUE(IsModelOf(*onto, good));
  Instance bad(sym);
  ElemId a = bad.AddConstant("a");
  bad.AddFact(A, {a});  // A(a) but no R-successor in B
  EXPECT_FALSE(IsModelOf(*onto, bad));
}

TEST_F(EvalTest, RepeatedGuardVariables) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(R, {a, a});
  std::map<uint32_t, ElemId> env{{x, a}};
  // ∃y (R(y,y) ∧ ...) must only match the loop.
  FormulaPtr loops = Formula::Exists({y}, Formula::Atom(R, {y, y}),
                                     Formula::True());
  EXPECT_TRUE(EvalFormula(*loops, d, env));
  Instance no_loop = MakeEdge();
  EXPECT_FALSE(EvalFormula(*loops, no_loop, env));
}

}  // namespace
}  // namespace gfomq
