#include <gtest/gtest.h>

#include <set>

#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "logic/symbols.h"

namespace gfomq {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: bad arity");
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
  Result<int> e = Status::InvalidArgument("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(InternerTest, StableDenseIds) {
  Interner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Name(1), "b");
  EXPECT_EQ(in.Find("c"), -1);
  EXPECT_EQ(in.Find("b"), 1);
  EXPECT_EQ(in.size(), 2u);
}

TEST(RngTest, DeterministicAndRangeRespecting) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(1).Next(), c.Next());
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Below(7);
    EXPECT_LT(v, 7u);
    int64_t w = r.Range(-3, 3);
    EXPECT_GE(w, -3);
    EXPECT_LE(w, 3);
  }
  EXPECT_FALSE(Rng(4).Chance(0.0));
  EXPECT_TRUE(Rng(4).Chance(1.0));
}

TEST(RngTest, ChanceIsRoughlyCalibrated) {
  Rng r(99);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (r.Chance(0.25)) ++hits;
  }
  EXPECT_GT(hits, trials / 4 - 300);
  EXPECT_LT(hits, trials / 4 + 300);
}

TEST(SymbolsTest, FreshRelAvoidsCollisions) {
  Symbols sym;
  sym.Rel("Def#0", 1);
  uint32_t fresh = sym.FreshRel("Def", 1);
  EXPECT_NE(sym.RelName(fresh), "Def#0");
  uint32_t fresh2 = sym.FreshRel("Def", 2);
  EXPECT_NE(fresh, fresh2);
  EXPECT_EQ(sym.RelArity(fresh2), 2);
}

TEST(SymbolsTest, SeparateNamespaces) {
  Symbols sym;
  uint32_t r = sym.Rel("same", 2);
  uint32_t v = sym.Var("same");
  uint32_t c = sym.Const("same");
  EXPECT_EQ(sym.RelName(r), "same");
  EXPECT_EQ(sym.VarName(v), "same");
  EXPECT_EQ(sym.ConstName(c), "same");
  EXPECT_EQ(sym.NumRels(), 1u);
  EXPECT_EQ(sym.NumVars(), 1u);
  EXPECT_EQ(sym.NumConsts(), 1u);
}

}  // namespace
}  // namespace gfomq
