// Or-parallel tableau suites:
//  - Differential: for 2/4/8 worker threads, consistency verdicts, model
//    counts and countermodel searches must be identical to the serial
//    reference engine (tableau_threads = 1) on random guarded instances
//    and on branch-heavy pigeonhole families.
//  - Cancellation hammer: repeated 8-worker runs where the first saturated
//    branch cancels a large sibling family (the tsan preset runs this).
//  - Budget-key regression: cache keys are execution-strategy independent,
//    so a parallel probe is served from the entry a serial probe wrote.
//  - Stats algebra: merging per-worker TableauStats in any order yields
//    the same aggregate (peaks max-merge, tallies add).
//  - Budget saturation: shared atomic budgets may downgrade a verdict to
//    kUnknown but never flip it.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "logic/parser.h"
#include "reasoner/certain.h"
#include "reasoner/tableau.h"

namespace gfomq {
namespace {

Instance RandomInstance(SymbolsPtr sym, Rng& rng, int salt) {
  Instance d(sym);
  std::vector<ElemId> es;
  int n = 2 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) {
      es.push_back(d.AddNull());
    } else {
      es.push_back(d.AddConstant("e" + std::to_string(salt) + "_" +
                                 std::to_string(i)));
    }
  }
  for (const char* u : {"A", "B", "C"}) {
    uint32_t rel = sym->Rel(u, 1);
    for (ElemId e : es) {
      if (rng.Chance(0.4)) d.AddFact(rel, {e});
    }
  }
  for (const char* b : {"R", "S"}) {
    uint32_t rel = sym->Rel(b, 2);
    for (ElemId x : es) {
      for (ElemId y : es) {
        if (rng.Chance(0.3)) d.AddFact(rel, {x, y});
      }
    }
  }
  return d;
}

// Disjunction-rich ontologies: branching is what the or-parallel engine
// parallelizes, so every ontology here forks.
const char* kOntologies[] = {
    "forall x . (A(x) -> B(x) | C(x)); forall x . (B(x) & C(x) -> false);",
    "forall x . (A(x) -> B(x) | C(x)); "
    "forall x, y (R(x,y) -> (B(x) -> B(y)));",
    "forall x . (A(x) -> B(x) | C(x)); "
    "forall x . (B(x) -> exists y (R(x,y) & C(y)));",
    "forall x . (A(x) -> exists>=2 y (R(x,y))); "
    "forall x . (B(x) -> exists<=1 y (R(x,y)));",
};

// Pigeonhole principle as guarded rules: every pigeon P picks one of
// `holes` colors, and D-linked pigeons may not share a color. On a clique
// of n pigeons this forces an injective coloring — inconsistent iff
// n > holes — and the branch tree is the full tree of partial colorings,
// the canonical branch-heavy workload.
RuleSet PigeonholeRules(SymbolsPtr sym, uint32_t holes) {
  RuleSet rules;
  rules.symbols = sym;
  GuardedRule choose;
  choose.num_vars = 1;
  choose.guard = Lit::Atom(sym->Rel("P", 1), {0});
  for (uint32_t h = 0; h < holes; ++h) {
    HeadAlt alt;
    alt.lits.push_back(
        Lit::Atom(sym->Rel("H" + std::to_string(h), 1), {0}));
    choose.head.push_back(alt);
  }
  rules.rules.push_back(choose);
  for (uint32_t h = 0; h < holes; ++h) {
    uint32_t rel_h = sym->Rel("H" + std::to_string(h), 1);
    GuardedRule conflict;
    conflict.num_vars = 2;
    conflict.guard = Lit::Atom(sym->Rel("D", 2), {0, 1});
    conflict.body.push_back(Lit::Atom(rel_h, {0}));
    conflict.body.push_back(Lit::Atom(rel_h, {1}));
    HeadAlt ff;
    ff.is_false = true;
    conflict.head.push_back(ff);
    rules.rules.push_back(conflict);
  }
  return rules;
}

Instance PigeonClique(SymbolsPtr sym, uint32_t pigeons) {
  Instance d(sym);
  uint32_t rel_p = sym->Rel("P", 1);
  uint32_t rel_d = sym->Rel("D", 2);
  std::vector<ElemId> es;
  for (uint32_t i = 0; i < pigeons; ++i) {
    es.push_back(d.AddConstant("p" + std::to_string(i)));
    d.AddFact(rel_p, {es.back()});
  }
  for (ElemId x : es) {
    for (ElemId y : es) {
      if (x != y) d.AddFact(rel_d, {x, y});
    }
  }
  return d;
}

TableauBudget ThreadedBudget(uint32_t threads) {
  TableauBudget b;
  b.tableau_threads = threads;
  // Decisive on every workload in this file: the differential contract is
  // only about decided verdicts (near the budget boundary, which branch
  // trips a shared limit first is scheduling-dependent by design).
  b.max_steps = 2000000;
  b.max_branches = 500000;
  return b;
}

TEST(TableauParallelTest, ConsistencyMatchesSerialOnRandomInstances) {
  Rng rng(20260807);
  for (const char* text : kOntologies) {
    SymbolsPtr sym = MakeSymbols();
    auto onto = ParseOntology(text, sym);
    ASSERT_TRUE(onto.ok()) << onto.status().ToString();
    auto rules = NormalizeOntology(*onto);
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    for (int round = 0; round < 10; ++round) {
      Instance d = RandomInstance(sym, rng, round);
      Tableau serial(*rules, ThreadedBudget(1));
      Certainty want = serial.IsConsistent(d);
      for (uint32_t threads : {2u, 4u, 8u}) {
        Tableau parallel(*rules, ThreadedBudget(threads));
        EXPECT_EQ(parallel.IsConsistent(d), want)
            << text << " round=" << round << " threads=" << threads;
      }
    }
  }
}

TEST(TableauParallelTest, ModelCountsMatchSerialOnPigeonhole) {
  SymbolsPtr sym = MakeSymbols();
  RuleSet rules = PigeonholeRules(sym, 3);
  Instance d = PigeonClique(sym, 3);  // 3 pigeons, 3 holes: 3! models

  auto count_models = [&](uint32_t threads) {
    Tableau tableau(rules, ThreadedBudget(threads));
    uint64_t count = 0;
    bool complete = tableau.ForEachModel(d, [&count](const Instance&) {
      ++count;
      return false;  // enumerate the whole tree, no cancellation
    });
    EXPECT_TRUE(complete) << "threads=" << threads;
    return count;
  };

  uint64_t want = count_models(1);
  EXPECT_EQ(want, 6u);
  for (uint32_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(count_models(threads), want) << "threads=" << threads;
  }
}

TEST(TableauParallelTest, FindModelWhereMatchesSerial) {
  Rng rng(99);
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(kOntologies[0], sym);
  ASSERT_TRUE(onto.ok());
  auto rules = NormalizeOntology(*onto);
  ASSERT_TRUE(rules.ok());
  uint32_t rel_b = sym->Rel("B", 1);
  // reject = "some element satisfies B": thread-safe (reads the reported
  // model only), exercised concurrently by the parallel engine.
  auto reject = [rel_b](const Instance& m) {
    for (ElemId e = 0; e < m.NumElements(); ++e) {
      if (m.HasFact(rel_b, {e})) return true;
    }
    return false;
  };
  for (int round = 0; round < 10; ++round) {
    Instance d = RandomInstance(sym, rng, round);
    Tableau serial(*rules, ThreadedBudget(1));
    Certainty want = serial.FindModelWhere(d, reject);
    for (uint32_t threads : {2u, 4u, 8u}) {
      Tableau parallel(*rules, ThreadedBudget(threads));
      EXPECT_EQ(parallel.FindModelWhere(d, reject), want)
          << "round=" << round << " threads=" << threads;
    }
  }
}

TEST(TableauParallelTest, SolverVerdictsMatchSerialReference) {
  Rng rng(4242);
  for (const char* text : kOntologies) {
    SymbolsPtr sym = MakeSymbols();
    auto onto = ParseOntology(text, sym);
    ASSERT_TRUE(onto.ok()) << onto.status().ToString();

    CertainOptions serial_opts;
    serial_opts.consistency_cache = false;
    auto serial = CertainAnswerSolver::Create(*onto, serial_opts);
    CertainOptions parallel_opts;
    parallel_opts.consistency_cache = false;
    parallel_opts.tableau = ThreadedBudget(8);
    serial_opts.tableau = ThreadedBudget(1);
    auto reference = CertainAnswerSolver::Create(*onto, serial_opts);
    auto parallel = CertainAnswerSolver::Create(*onto, parallel_opts);
    ASSERT_TRUE(reference.ok() && parallel.ok());

    Cq qb;
    qb.symbols = sym;
    qb.num_vars = 1;
    qb.answer_vars = {0};
    qb.atoms.push_back({sym->Rel("B", 1), {0}});

    for (int round = 0; round < 8; ++round) {
      Instance d = RandomInstance(sym, rng, round);
      EXPECT_EQ(parallel->IsConsistent(d), reference->IsConsistent(d))
          << text;
      for (ElemId e = 0; e < d.NumElements() && e < 2; ++e) {
        EXPECT_EQ(parallel->IsCertain(d, qb, {e}),
                  reference->IsCertain(d, qb, {e}))
            << text << " e=" << e;
      }
    }
  }
}

// The tsan workload: 8 workers race to saturate (consistent clique — the
// first model cancels a large live family) or to close every branch
// (inconsistent clique — full tree, shared budget atomics under fire).
TEST(TableauParallelTest, CancellationHammer8Workers) {
  SymbolsPtr sym = MakeSymbols();
  RuleSet rules = PigeonholeRules(sym, 5);
  Instance consistent = PigeonClique(sym, 5);
  Instance inconsistent = PigeonClique(sym, 6);
  for (int round = 0; round < 12; ++round) {
    Tableau sat(rules, ThreadedBudget(8));
    EXPECT_EQ(sat.IsConsistent(consistent), Certainty::kYes);
    Tableau unsat(rules, ThreadedBudget(8));
    EXPECT_EQ(unsat.IsConsistent(inconsistent), Certainty::kNo);
  }
}

TEST(TableauParallelTest, ParallelRunsSpawnTasksSerialRunsDoNot) {
  SymbolsPtr sym = MakeSymbols();
  RuleSet rules = PigeonholeRules(sym, 4);
  Instance d = PigeonClique(sym, 5);  // inconsistent: full tree explored

  Tableau serial(rules, ThreadedBudget(1));
  EXPECT_EQ(serial.IsConsistent(d), Certainty::kNo);
  EXPECT_EQ(serial.stats().tasks_spawned, 0u);
  EXPECT_EQ(serial.stats().peak_live_tasks, 0u);

  // Default budget (spawn_cutoff_depth = 0): every fork consults
  // Scheduler::ShouldSpawn(). The pool starts idle, so early forks always
  // pass the occupancy gate and tasks get spawned.
  Tableau parallel(rules, ThreadedBudget(8));
  EXPECT_EQ(parallel.IsConsistent(d), Certainty::kNo);
  EXPECT_GT(parallel.stats().tasks_spawned, 0u);
  EXPECT_GT(parallel.stats().peak_live_tasks, 0u);

  // Legacy override: a nonzero cutoff restores the fixed-depth heuristic.
  // With the cutoff just below the surface, deep forks are sequential-
  // cutoff hits — and the verdict is unchanged either way.
  TableauBudget legacy = ThreadedBudget(8);
  legacy.spawn_cutoff_depth = 1;
  Tableau cutoff(rules, legacy);
  EXPECT_EQ(cutoff.IsConsistent(d), Certainty::kNo);
  EXPECT_GT(cutoff.stats().sequential_cutoff_hits, 0u);
}

TEST(TableauParallelTest, BudgetKeyIgnoresExecutionStrategy) {
  TableauBudget serial;
  TableauBudget parallel;
  parallel.tableau_threads = 8;
  parallel.spawn_cutoff_depth = 2;
  EXPECT_EQ(BudgetKey(serial, 3), BudgetKey(parallel, 3));

  // Verdict-relevant fields must still separate keys.
  TableauBudget harder = serial;
  harder.max_steps += 1;
  EXPECT_NE(BudgetKey(serial, 3), BudgetKey(harder, 3));
  TableauBudget more_nulls = serial;
  more_nulls.max_fresh_nulls += 1;
  EXPECT_NE(BudgetKey(serial, 3), BudgetKey(more_nulls, 3));
  EXPECT_NE(BudgetKey(serial, 3), BudgetKey(serial, 4));
}

TEST(TableauParallelTest, SerialAndParallelProbesShareCacheEntries) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(kOntologies[0], sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());

  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(sym->Rel("A", 1), {a});

  TableauBudget serial = ThreadedBudget(1);
  Certainty first = solver->TableauIsConsistent(d, serial);
  uint64_t hits_before = solver->cache_stats().hits;
  // Same probe, parallel execution strategy: must be a cache hit (the key
  // excludes tableau_threads / spawn_cutoff_depth), not a recomputation.
  TableauBudget parallel = ThreadedBudget(8);
  parallel.spawn_cutoff_depth = 3;
  EXPECT_EQ(solver->TableauIsConsistent(d, parallel), first);
  EXPECT_EQ(solver->cache_stats().hits, hits_before + 1);
}

TEST(TableauParallelTest, StatsMergeIsOrderIndependent) {
  // Three per-worker partials with distinct values in every field.
  std::vector<TableauStats> parts(3);
  for (size_t i = 0; i < parts.size(); ++i) {
    uint64_t k = i + 1;
    parts[i].steps = 10 * k;
    parts[i].branches_opened = 20 * k;
    parts[i].branches_closed = 30 * k;
    parts[i].branches_saturated = 40 * k;
    parts[i].guard_match_probes = 50 * k;
    parts[i].index_lookups = 60 * k;
    parts[i].relation_scans = 70 * k;
    parts[i].cow_copies = 80 * k;
    parts[i].peak_branch_depth = 7 * ((i + 1) % 3);  // peak not in order 0..2
    parts[i].tasks_spawned = 90 * k;
    parts[i].cancelled_branches = 11 * k;
    parts[i].sequential_cutoff_hits = 13 * k;
    parts[i].peak_live_tasks = 5 * ((i + 2) % 3);
    parts[i].budget_hit = (i == 1);
  }
  std::vector<size_t> order = {0, 1, 2};
  TableauStats want;
  for (size_t i : order) want += parts[i];
  // Tallies add, watermarks max-merge.
  EXPECT_EQ(want.steps, 60u);
  EXPECT_EQ(want.peak_branch_depth, 14u);
  EXPECT_EQ(want.peak_live_tasks, 10u);
  EXPECT_TRUE(want.budget_hit);
  while (std::next_permutation(order.begin(), order.end())) {
    TableauStats got;
    for (size_t i : order) got += parts[i];
    EXPECT_EQ(got.steps, want.steps);
    EXPECT_EQ(got.branches_opened, want.branches_opened);
    EXPECT_EQ(got.branches_closed, want.branches_closed);
    EXPECT_EQ(got.branches_saturated, want.branches_saturated);
    EXPECT_EQ(got.guard_match_probes, want.guard_match_probes);
    EXPECT_EQ(got.index_lookups, want.index_lookups);
    EXPECT_EQ(got.relation_scans, want.relation_scans);
    EXPECT_EQ(got.cow_copies, want.cow_copies);
    EXPECT_EQ(got.peak_branch_depth, want.peak_branch_depth);
    EXPECT_EQ(got.tasks_spawned, want.tasks_spawned);
    EXPECT_EQ(got.cancelled_branches, want.cancelled_branches);
    EXPECT_EQ(got.sequential_cutoff_hits, want.sequential_cutoff_hits);
    EXPECT_EQ(got.peak_live_tasks, want.peak_live_tasks);
    EXPECT_EQ(got.budget_hit, want.budget_hit);
  }
}

TEST(TableauParallelTest, BudgetHitYieldsUnknownNeverWrong) {
  SymbolsPtr sym = MakeSymbols();
  RuleSet rules = PigeonholeRules(sym, 4);
  Instance inconsistent = PigeonClique(sym, 5);
  Instance consistent = PigeonClique(sym, 4);
  // Sweep step budgets from hopeless to generous: every (budget, threads)
  // combination must answer the truth or kUnknown — never the opposite.
  for (uint64_t max_steps : {1ull, 10ull, 100ull, 1000ull, 1000000ull}) {
    for (uint32_t threads : {1u, 2u, 8u}) {
      TableauBudget b;
      b.max_steps = max_steps;
      b.tableau_threads = threads;
      Tableau t1(rules, b);
      EXPECT_NE(t1.IsConsistent(inconsistent), Certainty::kYes)
          << "steps=" << max_steps << " threads=" << threads;
      Tableau t2(rules, b);
      EXPECT_NE(t2.IsConsistent(consistent), Certainty::kNo)
          << "steps=" << max_steps << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace gfomq
