#include <gtest/gtest.h>

#include "core/engine.h"
#include "corpus/corpus.h"
#include "dl/translate.h"
#include "logic/parser.h"

namespace gfomq {
namespace {

TEST(CorpusTest, GenerationIsDeterministic) {
  auto c1 = GenerateCorpus(42, 10);
  auto c2 = GenerateCorpus(42, 10);
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(DlOntologyToString(c1[i]), DlOntologyToString(c2[i]));
  }
  auto c3 = GenerateCorpus(43, 10);
  bool any_diff = false;
  for (size_t i = 0; i < c1.size(); ++i) {
    if (DlOntologyToString(c1[i]) != DlOntologyToString(c3[i])) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CorpusTest, CensusMatchesPaperShape) {
  // The paper: 411 ontologies; 405 within ALCHIF depth <= 2 (98.5%);
  // 385 within ALCHIQ depth 1 (93.7%). The calibrated generator must land
  // near those proportions.
  auto corpus = GenerateCorpus(2017, 411);
  CorpusReport report = AnalyzeCorpus(corpus);
  EXPECT_EQ(report.total, 411);
  EXPECT_GE(report.alchif_depth_le2, 395);
  EXPECT_LE(report.alchif_depth_le2, 411);
  EXPECT_GE(report.alchiq_depth_le1, 370);
  EXPECT_LE(report.alchiq_depth_le1, 400);
  // Most ontologies land in a dichotomy fragment.
  EXPECT_GT(report.dichotomy, report.total / 2);
}

TEST(CorpusTest, GeneratedOntologiesTranslate) {
  auto corpus = GenerateCorpus(7, 20);
  for (const DlOntology& onto : corpus) {
    auto guarded = TranslateToGuarded(onto);
    ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
    EXPECT_TRUE(guarded->Validate().ok());
    EXPECT_EQ(guarded->Depth(), onto.Depth());
  }
}

TEST(CoreTest, EngineClassifiesHornAsPtime) {
  auto onto = ParseOntology("forall x . (A(x) -> B(x));");
  ASSERT_TRUE(onto.ok());
  EngineOptions opts;
  opts.bouquet.max_outdegree = 2;
  auto engine = OmqEngine::Create(*onto, opts);
  ASSERT_TRUE(engine.ok());
  OmqVerdict verdict = engine->Classify();
  EXPECT_EQ(verdict.syntactic.verdict, DichotomyStatus::kDichotomy);
  EXPECT_EQ(verdict.ptime, Certainty::kYes);
  EXPECT_FALSE(verdict.Summary(*onto->symbols).empty());
}

TEST(CoreTest, EngineClassifiesDisjunctiveAsHard) {
  auto onto = ParseOntology("forall x . (A(x) -> B1(x) | B2(x));");
  ASSERT_TRUE(onto.ok());
  EngineOptions opts;
  opts.bouquet.max_outdegree = 1;
  auto engine = OmqEngine::Create(*onto, opts);
  ASSERT_TRUE(engine.ok());
  OmqVerdict verdict = engine->Classify();
  EXPECT_EQ(verdict.syntactic.verdict, DichotomyStatus::kDichotomy);
  EXPECT_EQ(verdict.ptime, Certainty::kNo);
  ASSERT_TRUE(verdict.violation.has_value());
}

TEST(CoreTest, EngineEndToEndQueryAnswering) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> exists y (R(x,y) & B(y)));", sym);
  ASSERT_TRUE(onto.ok());
  auto engine = OmqEngine::Create(*onto);
  ASSERT_TRUE(engine.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  auto q = ParseCq("q(x) :- R(x,y), B(y)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(engine->IsConsistent(d), Certainty::kYes);
  auto answers = engine->CertainAnswers(d, Ucq::Single(*q));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(*answers.begin(), std::vector<ElemId>{a});
  // And the rewriting agrees.
  auto rewrite = engine->Rewrite(Ucq::Single(*q));
  ASSERT_TRUE(rewrite.ok());
  EXPECT_GT(rewrite->program.rules.size(), 0u);
}

}  // namespace
}  // namespace gfomq
