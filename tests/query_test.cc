#include "query/cq.h"

#include <gtest/gtest.h>

namespace gfomq {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t R = sym->Rel("R", 2);
  uint32_t Q3 = sym->Rel("Q", 3);
};

TEST_F(QueryTest, ParseAndPrint) {
  auto q = ParseCq("q(x) :- R(x,y), A(y)", sym);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->Arity(), 1u);
  EXPECT_EQ(q->atoms.size(), 2u);
  EXPECT_EQ(q->ToString(), "q(x) :- R(x,y), A(y)");
}

TEST_F(QueryTest, BooleanQuery) {
  auto q = ParseCq("q() :- A(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsBoolean());
}

TEST_F(QueryTest, RejectsAnswerVarNotInAtoms) {
  EXPECT_FALSE(ParseCq("q(z) :- A(x)", sym).ok());
}

TEST_F(QueryTest, EvaluationFindsAnswers) {
  auto q = ParseCq("q(x) :- R(x,y), A(y)", sym);
  ASSERT_TRUE(q.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  d.AddFact(A, {c});
  auto answers = q->AllAnswers(d);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(*answers.begin(), std::vector<ElemId>{b});
  EXPECT_TRUE(q->HasAnswer(d, {b}));
  EXPECT_FALSE(q->HasAnswer(d, {a}));
}

TEST_F(QueryTest, RepeatedAnswerVariable) {
  auto q = ParseCq("q(x,x) :- A(x)", sym);
  ASSERT_TRUE(q.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(A, {a});
  EXPECT_TRUE(q->HasAnswer(d, {a, a}));
  EXPECT_FALSE(q->HasAnswer(d, {a, b}));
}

TEST_F(QueryTest, CanonicalDbMirrorsAtoms) {
  auto q = ParseCq("q(x) :- R(x,y), R(y,x)", sym);
  ASSERT_TRUE(q.ok());
  Instance db = q->CanonicalDb();
  EXPECT_EQ(db.NumElements(), 2u);
  EXPECT_EQ(db.NumFacts(), 2u);
}

TEST_F(QueryTest, Example4RootedAcyclicity) {
  // q(x) <- R(x,y), R(y,z), R(z,x) is not an rAQ; adding Q(x,y,z) makes it
  // one (Example 4 in the paper).
  auto q1 = ParseCq("q(x) :- R(x,y), R(y,z), R(z,x)", sym);
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(q1->IsRootedAcyclic());
  auto q2 = ParseCq("q(x) :- R(x,y), R(y,z), R(z,x), Q(x,y,z)", sym);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->IsRootedAcyclic());
}

TEST_F(QueryTest, BooleanQueriesAreNotRootedAcyclic) {
  auto q = ParseCq("q() :- A(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsRootedAcyclic());
}

TEST_F(QueryTest, PathQueryRootedAtEndpoint) {
  auto q = ParseCq("q(x) :- R(x,y), R(y,z)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsRootedAcyclic());
}

TEST_F(QueryTest, TwoAnswerVariablesMustBeGuarded) {
  // Answers {x,z} of a path x-y-z are not co-guarded: not an rAQ.
  auto q = ParseCq("q(x,z) :- R(x,y), R(y,z)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsRootedAcyclic());
  auto q2 = ParseCq("q(x,y) :- R(x,y), R(y,z)", sym);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->IsRootedAcyclic());
}

TEST_F(QueryTest, UcqParsingAndEvaluation) {
  auto u = ParseUcq("q(x) :- A(x) ; q(x) :- R(x,y)", sym);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->disjuncts.size(), 2u);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(R, {a, b});
  EXPECT_TRUE(u->HasAnswer(d, {a}));
  EXPECT_FALSE(u->HasAnswer(d, {b}));
}

TEST_F(QueryTest, UcqArityMismatchRejected) {
  EXPECT_FALSE(ParseUcq("q(x) :- A(x) ; q(x,y) :- R(x,y)", sym).ok());
}

}  // namespace
}  // namespace gfomq
