// The one-scheduler contract: nested task groups drain cooperatively on a
// single shared pool (at any worker count, including one), cancellation
// chains parent→child, member exceptions stay in their group, occupancy
// feedback saturates and recovers — and, the acceptance test of the
// refactor, driving every parallel layer (bouquet meta scan, or-parallel
// tableau, corpus census, serving driver) through one Scheduler constructs
// exactly one ThreadPool. Runs under the tsan preset and the asan batch.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/scheduler.h"
#include "common/task_group.h"
#include "common/thread_pool.h"
#include "corpus/corpus.h"
#include "logic/parser.h"
#include "reasoner/bouquet.h"
#include "reasoner/certain.h"
#include "serve/driver.h"

namespace gfomq {
namespace {

TEST(SchedulerTest, StatsArePassiveUntilFirstUse) {
  const uint64_t before = ThreadPool::total_constructed();
  Scheduler sched(2);
  SchedulerStats idle = sched.stats();
  EXPECT_EQ(idle.pools_created, 0u);
  EXPECT_EQ(idle.num_workers, 0u);
  EXPECT_EQ(ThreadPool::total_constructed(), before)
      << "stats() must never force pool creation";
  // First real use creates the pool, sized as configured.
  EXPECT_EQ(sched.pool().num_workers(), 2u);
  SchedulerStats live = sched.stats();
  EXPECT_EQ(live.pools_created, 1u);
  EXPECT_EQ(live.num_workers, 2u);
  EXPECT_EQ(ThreadPool::total_constructed(), before + 1);
}

TEST(SchedulerTest, NestedChildGroupDrainsInsideMember) {
  for (uint32_t workers : {1u, 2u, 8u}) {
    Scheduler sched(workers);
    std::atomic<int> child_work{0};
    std::atomic<int> members_done{0};
    constexpr int kMembers = 4;
    constexpr int kChildTasks = 8;
    TaskGroup parent(&sched);
    for (int m = 0; m < kMembers; ++m) {
      parent.Spawn([&sched, &parent, &child_work, &members_done] {
        // A member opens a child group and Waits on it: the worker must
        // drain (run the child's tasks itself if nobody else will) rather
        // than block — with one worker, blocking would deadlock forever.
        TaskGroup child(&sched, &parent);
        for (int t = 0; t < kChildTasks; ++t) {
          child.Spawn([&child_work] {
            child_work.fetch_add(1, std::memory_order_relaxed);
          });
        }
        child.Wait();
        members_done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    parent.Wait();
    EXPECT_EQ(child_work.load(), kMembers * kChildTasks)
        << "workers=" << workers;
    EXPECT_EQ(members_done.load(), kMembers) << "workers=" << workers;
    EXPECT_TRUE(parent.status().ok()) << "workers=" << workers;
  }
}

TEST(SchedulerTest, SameGroupWaitFromMemberDoesNotDeadlock) {
  // Regression: a member calling Wait() on its *own* group used to spin on
  // an outstanding count that could never reach zero (it is itself
  // outstanding). One worker is the hardest configuration.
  for (uint32_t workers : {1u, 2u}) {
    Scheduler sched(workers);
    std::atomic<int> siblings_done{0};
    std::atomic<bool> inner_wait_returned{false};
    TaskGroup group(&sched);
    group.Spawn([&group, &siblings_done, &inner_wait_returned] {
      constexpr int kSiblings = 4;
      for (int s = 0; s < kSiblings; ++s) {
        group.Spawn([&siblings_done] {
          siblings_done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      group.Wait();  // waits for everyone *else* in the group
      EXPECT_EQ(siblings_done.load(), kSiblings);
      inner_wait_returned.store(true, std::memory_order_release);
    });
    group.Wait();
    EXPECT_TRUE(inner_wait_returned.load(std::memory_order_acquire))
        << "workers=" << workers;
    EXPECT_EQ(siblings_done.load(), 4) << "workers=" << workers;
  }
}

TEST(SchedulerTest, CancellationPropagatesParentToChildOnly) {
  Scheduler sched(1);
  TaskGroup parent(&sched);
  TaskGroup child(&sched, &parent);
  TaskGroup grandchild(&sched, &child);
  TaskGroup unrelated(&sched);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(parent.cancelled());
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  EXPECT_FALSE(unrelated.cancelled());

  // The chain is one-way: cancelling a child never cancels its parent.
  TaskGroup parent2(&sched);
  TaskGroup child2(&sched, &parent2);
  child2.Cancel();
  EXPECT_TRUE(child2.cancelled());
  EXPECT_FALSE(parent2.cancelled());
}

TEST(SchedulerTest, MemberExceptionNeverHangsWaitOrPollutesPool) {
  Scheduler sched(2);
  TaskGroup group(&sched);
  std::atomic<int> survivors{0};
  group.Spawn([] { throw std::runtime_error("member boom"); });
  for (int i = 0; i < 4; ++i) {
    group.Spawn(
        [&survivors] { survivors.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();  // must return despite the throw
  EXPECT_EQ(survivors.load(), 4);
  Status st = group.status();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("member boom"), std::string::npos);
  // The failure is the group's, not the pool's: the shared pool keeps a
  // clean status and keeps running other families' tasks.
  EXPECT_TRUE(sched.pool().status().ok());
  TaskGroup after(&sched);
  std::atomic<bool> ran{false};
  after.Spawn([&ran] { ran.store(true, std::memory_order_relaxed); });
  after.Wait();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(after.status().ok());
}

TEST(SchedulerTest, OccupancySignalSaturatesAndRecovers) {
  Scheduler sched(1);
  // Idle pool: spare capacity, spawns allowed.
  EXPECT_TRUE(sched.ShouldSpawn());
  EXPECT_EQ(sched.stats().spawn_allowed, 1u);

  // Fill the pool past 2 * workers with tasks parked on a latch: the
  // signal must flip to "inline it yourself".
  std::promise<void> latch;
  std::shared_future<void> release = latch.get_future().share();
  TaskGroup group(&sched);
  for (int i = 0; i < 3; ++i) {
    group.Spawn([release] { release.wait(); });
  }
  EXPECT_FALSE(sched.ShouldSpawn());
  EXPECT_GE(sched.stats().spawn_denied, 1u);

  latch.set_value();
  group.Wait();
  // Drained: capacity is back.
  EXPECT_TRUE(sched.ShouldSpawn());
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.spawn_allowed, 2u);
  EXPECT_EQ(stats.tasks_submitted, 3u);
  EXPECT_EQ(stats.pools_created, 1u);
}

TEST(SchedulerTest, ExactlyOnePoolAcrossAllLayers) {
  const uint64_t pools_before = ThreadPool::total_constructed();
  Scheduler sched(4);

  // Layer 1: bouquet meta scan (formerly pool-per-scan in bouquet.cc).
  {
    SymbolsPtr sym = MakeSymbols();
    auto onto = ParseOntology("forall x . (A(x) -> B1(x) | B2(x));", sym);
    ASSERT_TRUE(onto.ok());
    CertainOptions copts;
    copts.scheduler = &sched;
    auto solver = CertainAnswerSolver::Create(*onto, copts);
    ASSERT_TRUE(solver.ok());
    BouquetOptions bopts;
    bopts.max_outdegree = 1;
    bopts.num_threads = 4;
    bopts.scheduler = &sched;
    MetaDecision md =
        DecidePtimeByBouquets(*solver, sym, onto->Signature(), bopts);
    EXPECT_EQ(md.ptime, Certainty::kNo);
  }

  // Layer 2: or-parallel tableau (formerly Tableau::owned_pool_ / the lazy
  // pool in CertainAnswerSolver::SharedState).
  {
    SymbolsPtr sym = MakeSymbols();
    auto onto = ParseOntology("forall x . (A(x) -> B1(x) | B2(x));", sym);
    ASSERT_TRUE(onto.ok());
    CertainOptions copts;
    copts.tableau.tableau_threads = 8;
    copts.scheduler = &sched;
    auto solver = CertainAnswerSolver::Create(*onto, copts);
    ASSERT_TRUE(solver.ok());
    Instance d(sym);
    d.AddFact(sym->Rel("A", 1), {d.AddConstant("a")});
    EXPECT_EQ(solver->IsConsistent(d), Certainty::kYes);
  }

  // Layer 3: corpus census (formerly a private pool in AnalyzeCorpus).
  {
    CorpusProfile profile;
    profile.num_concept_names = 3;
    profile.num_role_names = 2;
    auto corpus = GenerateCorpus(/*seed=*/7, /*count=*/8, profile);
    CorpusReport report = AnalyzeCorpus(corpus, /*num_threads=*/4, &sched);
    EXPECT_EQ(report.total, 8);
  }

  // Layer 4: serving driver (strand tasks execute on the shared pool).
  {
    serve::DriverOptions dopts;
    dopts.scheduler = &sched;
    dopts.plan.engine.scheduler = &sched;
    dopts.plan.force_backend = serve::PlanBackend::kDatalogRewrite;
    serve::ServeDriver drv(dopts);
    std::string onto_reply =
        drv.HandleLine("ontology O forall x . (A(x) -> B(x));");
    EXPECT_EQ(onto_reply.rfind("ok ontology O", 0), 0u) << onto_reply;
    EXPECT_EQ(drv.HandleLine("session s O"), "ok session s");
    EXPECT_EQ(drv.HandleLine("query s q q(x) :- B(x)"), "ok query q arity=1");
    EXPECT_EQ(drv.HandleLine("assert s A(a)"), "ok");
    std::string answers = drv.HandleLine("answers s q");
    EXPECT_EQ(answers.rfind("ok answers q", 0), 0u) << answers;
    EXPECT_EQ(drv.stats().errors, 0u);
  }

  EXPECT_EQ(ThreadPool::total_constructed() - pools_before, 1u)
      << "every layer must share the scheduler's single pool";
}

}  // namespace
}  // namespace gfomq
