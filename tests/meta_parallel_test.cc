// Determinism suite for the parallel bouquet meta decision: the verdict
// triple (ptime, violation witness, bouquets_checked) must be bit-identical
// for every thread count — the parallel search resolves races by always
// reporting the smallest-index violation, which is exactly the sequential
// answer. Run this binary under ThreadSanitizer (the tsan preset does).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "dl/translate.h"
#include "logic/parser.h"
#include "reasoner/bouquet.h"

namespace gfomq {
namespace {

struct Verdict {
  Certainty ptime;
  uint64_t bouquets_checked;
  bool budget_exhausted;
  bool has_violation;
  std::string witness;
};

Verdict Decide(CertainAnswerSolver& solver, SymbolsPtr sym,
               const std::vector<uint32_t>& signature, BouquetOptions opts,
               uint32_t threads) {
  opts.num_threads = threads;
  MetaDecision md = DecidePtimeByBouquets(solver, sym, signature, opts);
  EXPECT_EQ(md.stats.num_threads, threads == 0 ? md.stats.num_threads
                                               : threads);
  return {md.ptime, md.bouquets_checked, md.budget_exhausted,
          md.violation.has_value(),
          md.violation ? md.violation->ToString() : ""};
}

void ExpectSameVerdict(const Verdict& a, const Verdict& b,
                       const std::string& what) {
  EXPECT_EQ(a.ptime, b.ptime) << what;
  EXPECT_EQ(a.bouquets_checked, b.bouquets_checked) << what;
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted) << what;
  EXPECT_EQ(a.has_violation, b.has_violation) << what;
  EXPECT_EQ(a.witness, b.witness) << what;
}

TEST(MetaParallelTest, DisjunctionWitnessIdenticalAcrossThreadCounts) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology("forall x . (A(x) -> B1(x) | B2(x));", sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  BouquetOptions opts;
  opts.max_outdegree = 1;
  Verdict base = Decide(*solver, sym, onto->Signature(), opts, 1);
  EXPECT_EQ(base.ptime, Certainty::kNo);
  EXPECT_TRUE(base.has_violation);
  for (uint32_t threads : {2u, 4u, 8u}) {
    Verdict v = Decide(*solver, sym, onto->Signature(), opts, threads);
    ExpectSameVerdict(base, v, "threads=" + std::to_string(threads));
  }
}

TEST(MetaParallelTest, PtimeVerdictIdenticalAcrossThreadCounts) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  BouquetOptions opts;
  opts.max_outdegree = 2;
  Verdict base = Decide(*solver, sym, onto->Signature(), opts, 1);
  EXPECT_EQ(base.ptime, Certainty::kYes);
  EXPECT_FALSE(base.budget_exhausted);
  EXPECT_GT(base.bouquets_checked, 0u);
  for (uint32_t threads : {2u, 8u}) {
    Verdict v = Decide(*solver, sym, onto->Signature(), opts, threads);
    ExpectSameVerdict(base, v, "threads=" + std::to_string(threads));
  }
}

TEST(MetaParallelTest, BudgetExhaustionIdenticalAcrossThreadCounts) {
  // A Horn ontology over a signature big enough that 50 bouquets cannot
  // cover the space: every thread count must report the same kUnknown
  // with budget_exhausted and bouquets_checked == max_bouquets.
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));"
      "forall x, y (S(x,y) -> S(x,y));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  BouquetOptions opts;
  opts.max_outdegree = 3;
  opts.max_bouquets = 50;
  Verdict base = Decide(*solver, sym, onto->Signature(), opts, 1);
  EXPECT_EQ(base.ptime, Certainty::kUnknown);
  EXPECT_TRUE(base.budget_exhausted);
  EXPECT_EQ(base.bouquets_checked, 50u);
  for (uint32_t threads : {2u, 8u}) {
    Verdict v = Decide(*solver, sym, onto->Signature(), opts, threads);
    ExpectSameVerdict(base, v, "threads=" + std::to_string(threads));
  }
}

TEST(MetaParallelTest, ShardedEnumerationPartitionsTheSpace) {
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t R = sym->Rel("R", 2);
  std::vector<uint32_t> signature{A, R};
  BouquetOptions opts;
  opts.max_outdegree = 2;
  std::vector<uint64_t> all;
  BouquetScan scan = ForEachBouquet(sym, signature, opts,
                                    [&](const Instance&) {
                                      all.push_back(all.size());
                                      return false;
                                    });
  ASSERT_EQ(scan, BouquetScan::kComplete);
  ASSERT_GT(all.size(), 0u);
  constexpr uint32_t kShards = 3;
  std::vector<uint64_t> seen;
  for (uint32_t s = 0; s < kShards; ++s) {
    BouquetScan sscan = ForEachBouquetShard(
        sym, signature, opts, s, kShards,
        [&](uint64_t index, const Instance&) {
          EXPECT_EQ(index % kShards, s);
          seen.push_back(index);
          return false;
        });
    EXPECT_EQ(sscan, BouquetScan::kComplete);
  }
  // The shards partition the index space exactly.
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), all.size());
  for (uint64_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(MetaParallelTest, SeededCorpusSampleIsDeterministic) {
  // A seeded sample of corpus-shaped ontologies, kept small in signature
  // so every probe stays cheap: every ontology must get the identical
  // verdict with 1, 2 and 8 threads, including kUnknown budget cases.
  CorpusProfile profile;
  profile.num_concept_names = 3;
  profile.num_role_names = 2;
  profile.min_inclusions = 2;
  profile.max_inclusions = 6;
  auto corpus = GenerateCorpus(/*seed=*/11, /*count=*/6, profile);
  int decided = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto guarded = TranslateToGuarded(corpus[i]);
    ASSERT_TRUE(guarded.ok()) << "ontology " << i;
    auto solver = CertainAnswerSolver::Create(*guarded);
    if (!solver.ok()) continue;  // outside the solver's fragment: skip
    BouquetOptions opts;
    opts.max_outdegree = 1;
    opts.max_bouquets = 24;
    // Unary candidates alone keep each probe cheap; the point here is
    // determinism across thread counts, not probe completeness.
    opts.probe.boolean_binary_candidates = false;
    opts.probe.binary_pair_candidates = false;
    Verdict base =
        Decide(*solver, guarded->symbols, guarded->Signature(), opts, 1);
    for (uint32_t threads : {2u, 8u}) {
      Verdict v =
          Decide(*solver, guarded->symbols, guarded->Signature(), opts,
                 threads);
      ExpectSameVerdict(base, v,
                        "ontology " + std::to_string(i) + " threads=" +
                            std::to_string(threads));
    }
    ++decided;
  }
  EXPECT_GT(decided, 0);
}

TEST(MetaParallelTest, PerWorkerStatsAreConsistent) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology("forall x . (A(x) -> B(x));", sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  BouquetOptions opts;
  opts.max_outdegree = 2;
  opts.num_threads = 4;
  MetaDecision md =
      DecidePtimeByBouquets(*solver, sym, onto->Signature(), opts);
  EXPECT_EQ(md.ptime, Certainty::kYes);
  ASSERT_EQ(md.stats.per_worker.size(), 4u);
  uint64_t probed = 0;
  for (const MetaWorkerStats& w : md.stats.per_worker) {
    probed += w.bouquets_probed;
  }
  EXPECT_EQ(probed, md.stats.bouquets_probed);
  // No violation and no cancellation: the workers probed the whole space,
  // which is exactly what the deterministic accounting reports.
  EXPECT_EQ(probed, md.bouquets_checked);
  EXPECT_GT(md.stats.wall_micros, 0u);
}

}  // namespace
}  // namespace gfomq
