// Cross-engine property tests: the tableau, the ground solver and the
// finite model checker are independent implementations of the same
// semantics; on random ontologies and instances they must agree.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "instance/eval.h"
#include "logic/normalize.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "reasoner/certain.h"
#include "reasoner/ground.h"

namespace gfomq {
namespace {

// A small random uGF ontology: subsumptions, disjunctions, existentials
// and universal propagation over a fixed signature.
Ontology RandomOntology(Rng& rng, SymbolsPtr sym) {
  std::vector<std::string> unary{"A", "B", "C"};
  std::vector<std::string> binary{"R", "S"};
  std::string text;
  int n = 2 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < n; ++i) {
    const std::string& u1 = unary[rng.Below(unary.size())];
    const std::string& u2 = unary[rng.Below(unary.size())];
    const std::string& b = binary[rng.Below(binary.size())];
    switch (rng.Below(5)) {
      case 0:
        text += "forall x . (" + u1 + "(x) -> " + u2 + "(x));";
        break;
      case 1:
        text += "forall x . (" + u1 + "(x) -> " + u2 + "(x) | " +
                unary[rng.Below(unary.size())] + "(x));";
        break;
      case 2:
        text += "forall x . (" + u1 + "(x) -> exists y (" + b + "(x,y) & " +
                u2 + "(y)));";
        break;
      case 3:
        text += "forall x, y (" + b + "(x,y) -> (" + u1 + "(x) -> " + u2 +
                "(y)));";
        break;
      case 4:
        text += "forall x . (" + u1 + "(x) & " + u2 + "(x) -> false);";
        break;
    }
  }
  auto onto = ParseOntology(text, sym);
  EXPECT_TRUE(onto.ok()) << text;
  return *onto;
}

Instance RandomInstance(Rng& rng, SymbolsPtr sym, int salt) {
  Instance d(sym);
  std::vector<ElemId> es;
  int n = 2 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < n; ++i) {
    es.push_back(d.AddConstant("e" + std::to_string(salt) + "_" +
                               std::to_string(i)));
  }
  for (const char* u : {"A", "B", "C"}) {
    uint32_t rel = sym->Rel(u, 1);
    for (ElemId e : es) {
      if (rng.Chance(0.3)) d.AddFact(rel, {e});
    }
  }
  for (const char* b : {"R", "S"}) {
    uint32_t rel = sym->Rel(b, 2);
    for (ElemId u : es) {
      for (ElemId v : es) {
        if (rng.Chance(0.2)) d.AddFact(rel, {u, v});
      }
    }
  }
  if (d.NumFacts() == 0) d.AddFact(sym->Rel("A", 1), {es[0]});
  return d;
}

TEST(CrossValidationTest, TableauModelsSatisfyTheOntology) {
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    SymbolsPtr sym = MakeSymbols();
    Ontology onto = RandomOntology(rng, sym);
    Instance d = RandomInstance(rng, sym, trial);
    auto rules = NormalizeOntology(onto);
    ASSERT_TRUE(rules.ok());
    Tableau tableau(*rules);
    int models = 0;
    tableau.ForEachModel(d, [&](const Instance& model) {
      // Every saturated branch must be a genuine finite model of the
      // *original* ontology (checked by the independent evaluator) and an
      // extension of the input.
      EXPECT_TRUE(IsModelOf(onto, model))
          << "trial " << trial << "\nontology:\n"
          << OntologyToString(onto) << "input: " << d.ToString()
          << "\nmodel: " << model.ToString();
      for (const Fact& f : d.facts()) {
        EXPECT_TRUE(model.HasFact(f));
      }
      return ++models >= 5;  // a few branches per trial suffice
    });
  }
}

TEST(CrossValidationTest, GroundModelsSatisfyTheOntology) {
  Rng rng(999);
  for (int trial = 0; trial < 25; ++trial) {
    SymbolsPtr sym = MakeSymbols();
    Ontology onto = RandomOntology(rng, sym);
    Instance d = RandomInstance(rng, sym, trial);
    auto rules = NormalizeOntology(onto);
    ASSERT_TRUE(rules.ok());
    GroundSolver ground(*rules);
    for (uint32_t extra = 0; extra <= 2; ++extra) {
      Certainty c = Certainty::kUnknown;
      auto model = ground.FindModelAtSize(d, extra, nullptr, nullptr, &c);
      if (model) {
        EXPECT_TRUE(IsModelOf(onto, *model))
            << "trial " << trial << " extra " << extra << "\nontology:\n"
            << OntologyToString(onto) << "input: " << d.ToString()
            << "\nmodel: " << model->ToString();
        break;
      }
    }
  }
}

TEST(CrossValidationTest, TableauAndGroundAgreeOnConsistency) {
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    SymbolsPtr sym = MakeSymbols();
    Ontology onto = RandomOntology(rng, sym);
    Instance d = RandomInstance(rng, sym, trial);
    auto rules = NormalizeOntology(onto);
    ASSERT_TRUE(rules.ok());
    Tableau tableau(*rules);
    Certainty t = tableau.IsConsistent(d);
    GroundSolver ground(*rules);
    Certainty g = Certainty::kUnknown;
    for (uint32_t extra = 0; extra <= 2 && g != Certainty::kYes; ++extra) {
      Certainty c = Certainty::kUnknown;
      ground.FindModelAtSize(d, extra, nullptr, nullptr, &c);
      if (c == Certainty::kYes) g = Certainty::kYes;
    }
    // Ground "model found" must never contradict a tableau "inconsistent"
    // and vice versa.
    if (t == Certainty::kNo) {
      EXPECT_NE(g, Certainty::kYes)
          << "trial " << trial << "\n" << OntologyToString(onto);
    }
    if (g == Certainty::kYes && t != Certainty::kUnknown) {
      EXPECT_EQ(t, Certainty::kYes)
          << "trial " << trial << "\n" << OntologyToString(onto);
    }
  }
}

TEST(CrossValidationTest, CertainAnswersHoldInEverySampledModel) {
  Rng rng(777);
  for (int trial = 0; trial < 15; ++trial) {
    SymbolsPtr sym = MakeSymbols();
    Ontology onto = RandomOntology(rng, sym);
    Instance d = RandomInstance(rng, sym, trial);
    auto solver = CertainAnswerSolver::Create(onto);
    ASSERT_TRUE(solver.ok());
    if (solver->IsConsistent(d) != Certainty::kYes) continue;
    auto q = ParseCq("q(x) :- B(x)", sym);
    ASSERT_TRUE(q.ok());
    auto certain = solver->CertainAnswers(d, Ucq::Single(*q));
    auto rules = NormalizeOntology(onto);
    Tableau tableau(*rules);
    int models = 0;
    tableau.ForEachModel(d, [&](const Instance& model) {
      for (const auto& tuple : certain) {
        EXPECT_TRUE(q->HasAnswer(model, tuple))
            << "trial " << trial << ": certain answer missing in a model\n"
            << OntologyToString(onto);
      }
      return ++models >= 8;
    });
  }
}

TEST(CrossValidationTest, EntailedAtomsAreClosedUnderSubsumptionChains) {
  // Deterministic sanity net for the random suite: a chain A->B->C with
  // R-propagation must entail exactly the transitive closure facts.
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x));"
      "forall x . (B(x) -> C(x));"
      "forall x, y (R(x,y) -> (C(x) -> C(y)));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Instance d = RandomInstance(rng, sym, 100 + trial);
    auto q = ParseCq("q(x) :- C(x)", sym);
    auto certain = solver->CertainAnswers(d, Ucq::Single(*q));
    // Reference: saturate by hand.
    std::set<ElemId> c_holds;
    uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
    uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
    uint32_t C = static_cast<uint32_t>(sym->FindRel("C"));
    uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
    for (const Fact& f : d.facts()) {
      if (f.rel == A || f.rel == B || f.rel == C) c_holds.insert(f.args[0]);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Fact& f : d.facts()) {
        if (f.rel == R && c_holds.count(f.args[0]) &&
            !c_holds.count(f.args[1])) {
          c_holds.insert(f.args[1]);
          changed = true;
        }
      }
    }
    std::set<std::vector<ElemId>> expected;
    for (ElemId e : c_holds) expected.insert({e});
    EXPECT_EQ(certain, expected) << "trial " << trial;
  }
}

TEST(CrossValidationTest, ModelCheckerAgreesWithTableauOnSentences) {
  // EvalSentence on counting: build interpretations and check counting
  // semantics directly.
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (H(x) -> exists>=2 y (F(x,y)));", sym);
  ASSERT_TRUE(onto.ok());
  uint32_t H = static_cast<uint32_t>(sym->FindRel("H"));
  uint32_t F = static_cast<uint32_t>(sym->FindRel("F"));
  Instance one(sym);
  ElemId h = one.AddConstant("h");
  one.AddFact(H, {h});
  one.AddFact(F, {h, one.AddConstant("w1")});
  EXPECT_FALSE(IsModelOf(*onto, one));  // only one successor
  Instance two = one;
  two.AddFact(F, {h, two.AddConstant("w2")});
  EXPECT_TRUE(IsModelOf(*onto, two));
}

TEST(CrossValidationTest, FunctionalityEvalMatchesSemantics) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology("func F;", sym);
  ASSERT_TRUE(onto.ok());
  uint32_t F = static_cast<uint32_t>(sym->FindRel("F"));
  Instance good(sym);
  ElemId a = good.AddConstant("a");
  good.AddFact(F, {a, good.AddConstant("b")});
  EXPECT_TRUE(IsModelOf(*onto, good));
  Instance bad = good;
  bad.AddFact(F, {a, bad.AddConstant("c")});
  EXPECT_FALSE(IsModelOf(*onto, bad));
}

}  // namespace
}  // namespace gfomq
