#include <gtest/gtest.h>

#include "logic/parser.h"
#include "reasoner/bouquet.h"
#include "reasoner/certain.h"

namespace gfomq {
namespace {

// Helper: build a solver from ontology text over shared symbols.
CertainAnswerSolver MakeSolver(const std::string& onto_text, SymbolsPtr sym,
                               CertainOptions opts = {}) {
  auto onto = ParseOntology(onto_text, sym);
  EXPECT_TRUE(onto.ok()) << onto.status().ToString();
  auto solver = CertainAnswerSolver::Create(*onto, opts);
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  return std::move(*solver);
}

TEST(ReasonerTest, AtomicSubsumption) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (A(x) -> B(x));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  EXPECT_EQ(solver.IsConsistent(d), Certainty::kYes);
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
  auto qc = ParseCq("q(x) :- C(x)", sym);
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(solver.IsCertain(d, *qc, {a}), Certainty::kNo);
}

TEST(ReasonerTest, ChainOfSubsumptions) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x . (A(x) -> B(x)); forall x . (B(x) -> C(x));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  auto q = ParseCq("q(x) :- C(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
}

TEST(ReasonerTest, DisjunctionGivesNoAtomicCertainty) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (A(x) -> B1(x) | B2(x));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  auto q1 = ParseCq("q(x) :- B1(x)", sym);
  auto q2 = ParseCq("q(x) :- B2(x)", sym);
  ASSERT_TRUE(q1.ok() && q2.ok());
  EXPECT_EQ(solver.IsCertain(d, *q1, {a}), Certainty::kNo);
  EXPECT_EQ(solver.IsCertain(d, *q2, {a}), Certainty::kNo);
  // But the union is certain.
  auto u = ParseUcq("q(x) :- B1(x) ; q(x) :- B2(x)", sym);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(solver.IsCertain(d, *u, {a}), Certainty::kYes);
  // And this is exactly a disjunction-property violation (Theorem 17).
  EXPECT_EQ(solver.HasDisjunctionViolation(
                d, {{Ucq::Single(*q1), {a}}, {Ucq::Single(*q2), {a}}}),
            Certainty::kYes);
}

TEST(ReasonerTest, ExistentialWitnesses) {
  SymbolsPtr sym = MakeSymbols();
  auto solver =
      MakeSolver("forall x . (A(x) -> exists y (R(x,y) & B(y)));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  auto q = ParseCq("q(x) :- R(x,y), B(y)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
  auto qc = ParseCq("q(x) :- R(x,y), C(y)", sym);
  ASSERT_TRUE(qc.ok());
  EXPECT_EQ(solver.IsCertain(d, *qc, {a}), Certainty::kNo);
  // Boolean query.
  auto qb = ParseCq("q() :- B(y)", sym);
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(solver.IsCertain(d, *qb, {}), Certainty::kYes);
}

TEST(ReasonerTest, InconsistencyByDisjointness) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (A(x) & B(x) -> false);", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  d.AddFact(static_cast<uint32_t>(sym->FindRel("B")), {a});
  EXPECT_EQ(solver.IsConsistent(d), Certainty::kNo);
  // Everything is certain on an inconsistent instance.
  auto q = ParseCq("q(x) :- Z(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
}

TEST(ReasonerTest, FunctionalityMergesNullsAndClosesOnConstants) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("func F;", sym);
  uint32_t F = static_cast<uint32_t>(sym->FindRel("F"));
  {
    // Two constant successors: inconsistent (standard names).
    Instance d(sym);
    ElemId a = d.AddConstant("a");
    ElemId b = d.AddConstant("b");
    ElemId c = d.AddConstant("c");
    d.AddFact(F, {a, b});
    d.AddFact(F, {a, c});
    EXPECT_EQ(solver.IsConsistent(d), Certainty::kNo);
  }
  {
    Instance d(sym);
    ElemId a = d.AddConstant("a");
    ElemId b = d.AddConstant("b");
    d.AddFact(F, {a, b});
    EXPECT_EQ(solver.IsConsistent(d), Certainty::kYes);
  }
}

TEST(ReasonerTest, FunctionalityMergePropagatesFacts) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "func F; forall x . (A(x) -> exists y (F(x,y) & B(y)));", sym);
  uint32_t F = static_cast<uint32_t>(sym->FindRel("F"));
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  d.AddFact(F, {a, b});
  // The existential witness must merge with b, so B(b) is certain.
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {b}), Certainty::kYes);
}

TEST(ReasonerTest, CountingConflictIsInconsistent) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x . (A(x) -> exists>=2 y (R(x,y)));"
      "forall x . (A(x) -> exists<=1 y (R(x,y)));",
      sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  EXPECT_EQ(solver.IsConsistent(d), Certainty::kNo);
}

TEST(ReasonerTest, AtLeastCreatesDistinctWitnesses) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (A(x) -> exists>=3 y (R(x,y)));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("A")), {a});
  EXPECT_EQ(solver.IsConsistent(d), Certainty::kYes);
  auto q = ParseCq("q(x) :- R(x,y)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
}

TEST(ReasonerTest, HandThumbExampleFromIntroduction) {
  // O1 ∪ O2 from the paper's introduction: a hand has exactly five fingers
  // and some finger is a thumb. On a hand with five named fingers, "some
  // f_i is a thumb" is certain as a disjunction while no single Thumb(f_i)
  // is — the disjunction-property violation that makes O1 ∪ O2 coNP-hard.
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x . (Hand(x) -> exists>=5 y (hasFinger(x,y)) & "
      "exists<=5 y (hasFinger(x,y)));"
      "forall x . (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y)));",
      sym);
  uint32_t hand = static_cast<uint32_t>(sym->FindRel("Hand"));
  uint32_t has_finger = static_cast<uint32_t>(sym->FindRel("hasFinger"));
  Instance d(sym);
  ElemId h = d.AddConstant("h");
  d.AddFact(hand, {h});
  std::vector<ElemId> fingers;
  for (int i = 0; i < 5; ++i) {
    ElemId f = d.AddConstant("f" + std::to_string(i));
    fingers.push_back(f);
    d.AddFact(has_finger, {h, f});
  }
  EXPECT_EQ(solver.IsConsistent(d), Certainty::kYes);
  // Some finger is a thumb: certain.
  auto qt = ParseCq("q(x) :- hasFinger(x,y), Thumb(y)", sym);
  ASSERT_TRUE(qt.ok());
  EXPECT_EQ(solver.IsCertain(d, *qt, {h}), Certainty::kYes);
  // No specific finger is certainly the thumb.
  auto qf = ParseCq("q(y) :- Thumb(y)", sym);
  ASSERT_TRUE(qf.ok());
  std::vector<std::pair<Ucq, std::vector<ElemId>>> disjuncts;
  for (ElemId f : fingers) {
    EXPECT_EQ(solver.IsCertain(d, *qf, {f}), Certainty::kNo);
    disjuncts.push_back({Ucq::Single(*qf), {f}});
  }
  // The disjunction over the five fingers is certain: violation witnessed.
  EXPECT_EQ(solver.HasDisjunctionViolation(d, disjuncts), Certainty::kYes);
}

TEST(ReasonerTest, HandWithO1OnlyIsMaterializableHere) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x . (Hand(x) -> exists>=5 y (hasFinger(x,y)) & "
      "exists<=5 y (hasFinger(x,y)));",
      sym);
  Instance d(sym);
  ElemId h = d.AddConstant("h");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("Hand")), {h});
  auto q = ParseCq("q(x) :- hasFinger(x,y)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {h}), Certainty::kYes);
}

TEST(ReasonerTest, ForallPropagationAlongEdges) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x, y (R(x,y) -> (E(x) -> E(y)));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  d.AddFact(static_cast<uint32_t>(sym->FindRel("E")), {a});
  auto q = ParseCq("q(x) :- E(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {c}), Certainty::kYes);
}

TEST(ReasonerTest, Example6OddCycleEntailsE) {
  // Example 6 of the paper: on an odd R-cycle (no A facts), E is entailed
  // at every element; on an even cycle it is not.
  SymbolsPtr sym = MakeSymbols();
  const std::string onto_text =
      "forall x . (A(x) -> (exists y (R(x,y) & A(y)) -> E(x)));"
      "forall x . (!A(x) -> (exists y (R(x,y) & !A(y)) -> E(x)));"
      "forall x, y (R(x,y) -> (E(x) -> E(y)) & (E(y) -> E(x)));";
  auto solver = MakeSolver(onto_text, sym);
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  auto make_cycle = [&](int n) {
    Instance d(sym);
    std::vector<ElemId> es;
    for (int i = 0; i < n; ++i) {
      es.push_back(d.AddConstant("c" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      d.AddFact(R, {es[static_cast<size_t>(i)],
                    es[static_cast<size_t>((i + 1) % n)]});
    }
    return d;
  };
  auto q = ParseCq("q(x) :- E(x)", sym);
  ASSERT_TRUE(q.ok());
  Instance odd = make_cycle(3);
  EXPECT_EQ(solver.IsCertain(odd, *q, {0}), Certainty::kYes);
  Instance even = make_cycle(4);
  EXPECT_EQ(solver.IsCertain(even, *q, {0}), Certainty::kNo);
}

TEST(ReasonerTest, InfiniteChaseStillDecidesEntailedQuery) {
  // ∀x ∃y (S(x,y) ∧ A(y)) has no finite chase fixpoint, but monotone
  // pruning lets entailed queries terminate.
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (exists y (S(x,y) & A(y)));", sym);
  Instance d(sym);
  ElemId c = d.AddConstant("c");
  d.AddFact(sym->Rel("C", 1), {c});
  auto q = ParseCq("q(x) :- S(x,y), A(y)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {c}), Certainty::kYes);
  // A non-entailed query is refuted by the ground solver's finite model.
  auto qb = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(solver.IsCertain(d, *qb, {c}), Certainty::kNo);
}

TEST(ReasonerTest, CertainAnswersEnumeration) {
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (A(x) -> B(x));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  d.AddFact(A, {a});
  d.AddFact(B, {b});
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  auto answers = solver.CertainAnswers(d, Ucq::Single(*q));
  EXPECT_EQ(answers.size(), 2u);
  EXPECT_TRUE(answers.count({a}));
  EXPECT_TRUE(answers.count({b}));
}

TEST(ReasonerTest, EqualityInExistentialMatrix) {
  // ∀x ∃y (R(x,y) ∧ x = y) forces a reflexive R edge.
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver("forall x . (exists y (R(x,y) & x = y));", sym);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(sym->Rel("C", 1), {a});
  auto q = ParseCq("q(x) :- R(x,x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver.IsCertain(d, *q, {a}), Certainty::kYes);
}

TEST(ReasonerTest, ParallelMetaSearchCancelsSoonAfterEarlyViolation) {
  // Cancellation regression: the covering disjunction A → B1 ∨ B2 is
  // violated by the very first bouquet carrying an A-fact, which the
  // canonical enumeration order emits within the first handful of
  // indices. The tautological R/S axioms only inflate the signature so
  // the full bouquet space is enormous — a search that fails to cancel
  // would grind through ~max_bouquets tableau probes.
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B1(x) | B2(x));"
      "forall x, y (R(x,y) -> R(x,y));"
      "forall x, y (S(x,y) -> S(x,y));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  BouquetOptions opts;
  opts.max_outdegree = 3;
  opts.max_bouquets = 200000;
  uint64_t sequential_checked = 0;
  for (uint32_t threads : {1u, 2u, 4u}) {
    opts.num_threads = threads;
    MetaDecision md =
        DecidePtimeByBouquets(*solver, sym, onto->Signature(), opts);
    EXPECT_EQ(md.ptime, Certainty::kNo) << "threads=" << threads;
    ASSERT_TRUE(md.violation.has_value());
    // The deterministic accounting is the sequential prefix up to the hit.
    if (threads == 1) sequential_checked = md.bouquets_checked;
    EXPECT_EQ(md.bouquets_checked, sequential_checked)
        << "threads=" << threads;
    EXPECT_LE(md.bouquets_checked, 16u);
    // Cancellation must stop the racing workers almost immediately: the
    // total work actually performed stays within a whisker of the hit
    // index, nowhere near the 200000-bouquet budget.
    EXPECT_LT(md.stats.bouquets_probed, 200u) << "threads=" << threads;
  }
}

TEST(ReasonerTest, GroundSolverFindsEvenCycleColoring) {
  // 2-coloring ontology: consistent on even cycles, inconsistent on odd.
  SymbolsPtr sym = MakeSymbols();
  auto solver = MakeSolver(
      "forall x . (C1(x) | C2(x));"
      "forall x, y (R(x,y) -> !(C1(x) & C1(y)) & !(C2(x) & C2(y)));",
      sym);
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  auto make_cycle = [&](int n) {
    Instance d(sym);
    std::vector<ElemId> es;
    for (int i = 0; i < n; ++i) {
      es.push_back(d.AddConstant("c" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      d.AddFact(R, {es[static_cast<size_t>(i)],
                    es[static_cast<size_t>((i + 1) % n)]});
    }
    return d;
  };
  Instance even = make_cycle(4);
  EXPECT_EQ(solver.IsConsistent(even), Certainty::kYes);
  Instance odd = make_cycle(5);
  EXPECT_EQ(solver.IsConsistent(odd), Certainty::kNo);
}

}  // namespace
}  // namespace gfomq
