// Property-based suites over the paper's semantic invariants:
//  - Theorem 1 (substance): uGF ontologies are invariant under disjoint
//    unions — consistency and certain answers localize to components.
//  - Monotonicity: certain answers never shrink when facts are added.
//  - Theorem 2/4 flavour: CQ evaluation agrees with its singleton-UCQ
//    evaluation, and UCQ certainty is implied by any disjunct's certainty.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "logic/parser.h"
#include "reasoner/certain.h"

namespace gfomq {
namespace {

struct OntologyCase {
  const char* name;
  const char* text;
};

const OntologyCase kCases[] = {
    {"horn_subsumption",
     "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));"},
    {"existential",
     "forall x . (A(x) -> exists y (R(x,y) & B(y)));"},
    {"disjunctive",
     "forall x . (A(x) -> B(x) | C(x));"},
    {"guarded_universal",
     "forall x . (A(x) -> forall y (R(x,y) -> B(y)));"},
    {"counting",
     "forall x . (A(x) -> exists>=2 y (R(x,y)));"},
    {"disjointness",
     "forall x . (B(x) & C(x) -> false);"},
};

class UgfPropertyTest : public ::testing::TestWithParam<OntologyCase> {
 protected:
  void SetUp() override {
    sym = MakeSymbols();
    auto parsed = ParseOntology(GetParam().text, sym);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    onto.emplace(std::move(*parsed));
    auto s = CertainAnswerSolver::Create(*onto);
    ASSERT_TRUE(s.ok());
    solver.emplace(std::move(*s));
  }

  Instance RandomInstance(Rng& rng, int salt) {
    Instance d(sym);
    std::vector<ElemId> es;
    int n = 2 + static_cast<int>(rng.Below(2));
    for (int i = 0; i < n; ++i) {
      es.push_back(d.AddConstant("p" + std::to_string(salt) + "_" +
                                 std::to_string(i)));
    }
    for (const char* u : {"A", "B", "C"}) {
      uint32_t rel = sym->Rel(u, 1);
      for (ElemId e : es) {
        if (rng.Chance(0.35)) d.AddFact(rel, {e});
      }
    }
    uint32_t r = sym->Rel("R", 2);
    for (ElemId u : es) {
      for (ElemId v : es) {
        if (rng.Chance(0.25)) d.AddFact(r, {u, v});
      }
    }
    if (d.NumFacts() == 0) d.AddFact(sym->Rel("A", 1), {es[0]});
    return d;
  }

  SymbolsPtr sym;
  std::optional<Ontology> onto;
  std::optional<CertainAnswerSolver> solver;
};

TEST_P(UgfPropertyTest, DisjointUnionInvariance) {
  // For uGF ontologies: D1 ⊎ D2 is consistent iff both components are, and
  // a tuple over D1's elements is certain on the union iff it is on D1.
  Rng rng(17);
  for (int trial = 0; trial < 4; ++trial) {
    Instance d1 = RandomInstance(rng, trial * 2);
    Instance d2 = RandomInstance(rng, trial * 2 + 1);
    Certainty c1 = solver->IsConsistent(d1);
    Certainty c2 = solver->IsConsistent(d2);
    Instance both = d1;
    both.AppendDisjoint(d2);
    Certainty cu = solver->IsConsistent(both);
    if (c1 != Certainty::kUnknown && c2 != Certainty::kUnknown &&
        cu != Certainty::kUnknown) {
      EXPECT_EQ(cu == Certainty::kYes,
                c1 == Certainty::kYes && c2 == Certainty::kYes)
          << GetParam().name << " trial " << trial;
    }
    if (c1 == Certainty::kYes && c2 == Certainty::kYes) {
      auto q = ParseCq("q(x) :- B(x)", sym);
      ASSERT_TRUE(q.ok());
      for (ElemId e = 0; e < d1.NumElements(); ++e) {
        Certainty on_d1 = solver->IsCertain(d1, *q, {e});
        Certainty on_union = solver->IsCertain(both, *q, {e});
        if (on_d1 != Certainty::kUnknown &&
            on_union != Certainty::kUnknown) {
          EXPECT_EQ(on_d1, on_union)
              << GetParam().name << " trial " << trial << " elem " << e;
        }
      }
    }
  }
}

TEST_P(UgfPropertyTest, CertainAnswersAreMonotoneUnderFactAddition) {
  Rng rng(29);
  for (int trial = 0; trial < 4; ++trial) {
    Instance d = RandomInstance(rng, 100 + trial);
    if (solver->IsConsistent(d) != Certainty::kYes) continue;
    auto q = ParseCq("q(x) :- B(x)", sym);
    ASSERT_TRUE(q.ok());
    auto before = solver->CertainAnswers(d, Ucq::Single(*q));
    // Add one random fact.
    Instance bigger = d;
    uint32_t a_rel = sym->Rel("A", 1);
    bigger.AddFact(a_rel, {static_cast<ElemId>(rng.Below(d.NumElements()))});
    auto after = solver->CertainAnswers(bigger, Ucq::Single(*q));
    for (const auto& tuple : before) {
      EXPECT_TRUE(after.count(tuple))
          << GetParam().name << " trial " << trial
          << ": certain answer lost after adding a fact";
    }
  }
}

TEST_P(UgfPropertyTest, CqAgreesWithSingletonUcq) {
  Rng rng(43);
  Instance d = RandomInstance(rng, 7);
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  for (ElemId e = 0; e < d.NumElements(); ++e) {
    EXPECT_EQ(solver->IsCertain(d, *q, {e}),
              solver->IsCertain(d, Ucq::Single(*q), {e}));
  }
}

TEST_P(UgfPropertyTest, DisjunctCertaintyImpliesUcqCertainty) {
  Rng rng(59);
  Instance d = RandomInstance(rng, 13);
  auto u = ParseUcq("q(x) :- B(x) ; q(x) :- C(x)", sym);
  ASSERT_TRUE(u.ok());
  auto qb = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(qb.ok());
  for (ElemId e = 0; e < d.NumElements(); ++e) {
    if (solver->IsCertain(d, *qb, {e}) == Certainty::kYes) {
      EXPECT_EQ(solver->IsCertain(d, *u, {e}), Certainty::kYes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOntologies, UgfPropertyTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<OntologyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gfomq
