#include "serve/driver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace gfomq::serve {
namespace {

DriverOptions PinnedDatalog() {
  DriverOptions o;
  o.plan.force_backend = PlanBackend::kDatalogRewrite;
  return o;
}

TEST(ServeDriverTest, ProtocolHappyPath) {
  ServeDriver drv(PinnedDatalog());
  EXPECT_EQ(drv.HandleLine(""), "");
  EXPECT_EQ(drv.HandleLine("   "), "");
  EXPECT_EQ(drv.HandleLine("# a comment"), "");

  std::string r = drv.HandleLine("ontology O forall x . (A(x) -> B(x));");
  EXPECT_EQ(r.rfind("ok ontology O", 0), 0u) << r;
  EXPECT_NE(r.find("backend=datalog"), std::string::npos) << r;

  EXPECT_EQ(drv.HandleLine("session s1 O"), "ok session s1");
  EXPECT_EQ(drv.HandleLine("query s1 q q(x) :- B(x)"), "ok query q arity=1");
  EXPECT_EQ(drv.HandleLine("assert s1 A(alice)"), "ok");
  EXPECT_EQ(drv.HandleLine("assert s1 A(alice)"), "ok absent");
  EXPECT_EQ(drv.HandleLine("assert s1 B(bob)"), "ok");
  EXPECT_EQ(drv.HandleLine("answers s1 q"),
            "ok answers q n=2 (alice) (bob)");
  EXPECT_EQ(drv.HandleLine("retract s1 B(bob)"), "ok");
  EXPECT_EQ(drv.HandleLine("answers s1 q"), "ok answers q n=1 (alice)");
  EXPECT_EQ(drv.HandleLine("retract s1 B(bob)"), "ok absent");
  EXPECT_EQ(drv.HandleLine("retract s1 Z(nobody)"), "ok absent");
  EXPECT_EQ(drv.HandleLine("close s1"), "ok closed s1");
  EXPECT_EQ(drv.num_sessions(), 0u);
  EXPECT_EQ(drv.stats().errors, 0u);
}

TEST(ServeDriverTest, ProtocolErrors) {
  ServeDriver drv(PinnedDatalog());
  EXPECT_EQ(drv.HandleLine("bogus"),
            "err unknown command 'bogus'");
  EXPECT_EQ(drv.HandleLine("session s1 missing").rfind("err ", 0), 0u);
  EXPECT_EQ(drv.HandleLine("assert nosuch A(a)").rfind("err ", 0), 0u);
  ASSERT_EQ(drv.HandleLine("ontology O forall x . (A(x) -> B(x));")
                .rfind("ok ", 0),
            0u);
  ASSERT_EQ(drv.HandleLine("session s1 O"), "ok session s1");
  EXPECT_EQ(drv.HandleLine("answers s1 q").rfind("err ", 0), 0u);
  EXPECT_EQ(drv.HandleLine("assert s1 noparens").rfind("err ", 0), 0u);
  EXPECT_EQ(drv.HandleLine("assert s1 A(a,b)").rfind("err ", 0), 0u)
      << "arity mismatch must be an error, not an abort";
  EXPECT_EQ(drv.HandleLine("ontology Bad forall x . (").rfind("err ", 0), 0u);
  EXPECT_EQ(drv.HandleLine("query s1 q notaquery").rfind("err ", 0), 0u);
  EXPECT_GT(drv.stats().errors, 0u);
}

TEST(ServeDriverTest, PlanCacheSharedAcrossOntologyNames) {
  ServeDriver drv(PinnedDatalog());
  std::string r1 = drv.HandleLine("ontology O1 forall x . (A(x) -> B(x));");
  std::string r2 = drv.HandleLine("ontology O2 forall x . (A(x) -> B(x));");
  ASSERT_EQ(r1.rfind("ok ", 0), 0u);
  ASSERT_EQ(r2.rfind("ok ", 0), 0u);
  // Same text, same driver-wide symbol table: one compiled plan.
  std::string p1 = r1.substr(r1.find("plan="));
  std::string p2 = r2.substr(r2.find("plan="));
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(drv.plans().size(), 1u);
  EXPECT_EQ(drv.plans().stats().hits, 1u);
  // Opening sessions hits the cache again.
  EXPECT_EQ(drv.HandleLine("session s1 O1"), "ok session s1");
  EXPECT_EQ(drv.HandleLine("session s2 O2"), "ok session s2");
  EXPECT_EQ(drv.plans().stats().hits, 3u);
  EXPECT_GT(drv.plans().stats().HitRate(), 0.0);
}

TEST(ServeDriverTest, PlanCacheEvictsLruAndSurfacesCounters) {
  DriverOptions opts = PinnedDatalog();
  opts.plan.plan_capacity = 2;
  ServeDriver drv(opts);
  ASSERT_EQ(drv.plans().capacity(), 2u);
  ASSERT_EQ(drv.HandleLine("ontology O1 forall x . (A(x) -> B(x));")
                .rfind("ok ", 0),
            0u);
  ASSERT_EQ(drv.HandleLine("ontology O2 forall x . (A(x) -> C(x));")
                .rfind("ok ", 0),
            0u);
  EXPECT_EQ(drv.plans().size(), 2u);
  EXPECT_EQ(drv.plans().stats().evictions, 0u);
  // Touch O1 so O2 becomes the LRU entry, then overflow the cache: the
  // third distinct plan must displace O2, not O1.
  ASSERT_EQ(drv.HandleLine("session s1 O1"), "ok session s1");
  ASSERT_EQ(drv.HandleLine("ontology O3 forall x . (A(x) -> D(x));")
                .rfind("ok ", 0),
            0u);
  EXPECT_EQ(drv.plans().size(), 2u);
  EXPECT_EQ(drv.plans().stats().evictions, 1u);
  // O1 survived (hit); O2 was evicted (recompiles as a miss).
  uint64_t misses_before = drv.plans().stats().misses;
  ASSERT_EQ(drv.HandleLine("session s1b O1"), "ok session s1b");
  EXPECT_EQ(drv.plans().stats().misses, misses_before);
  ASSERT_EQ(drv.HandleLine("session s2 O2"), "ok session s2");
  EXPECT_EQ(drv.plans().stats().misses, misses_before + 1);
  // All three counters surface through the stats command.
  std::string stats = drv.HandleLine("stats");
  EXPECT_NE(stats.find("plan_hits="), std::string::npos) << stats;
  EXPECT_NE(stats.find("plan_misses="), std::string::npos) << stats;
  EXPECT_NE(stats.find("plan_evictions=2"), std::string::npos) << stats;
}

TEST(ServeDriverTest, ServeLoopReadsUntilQuit) {
  ServeDriver drv(PinnedDatalog());
  std::istringstream in(
      "ontology O forall x . (A(x) -> B(x));\n"
      "session s O\n"
      "query s q q(x) :- B(x)\n"
      "assert s A(a)\n"
      "answers s q\n"
      "quit\n"
      "assert s A(b)\n");  // after quit: never read
  std::ostringstream out;
  drv.Serve(in, out);
  std::string text = out.str();
  EXPECT_NE(text.find("ok answers q n=1 (a)"), std::string::npos) << text;
  EXPECT_NE(text.find("ok bye"), std::string::npos);
  EXPECT_EQ(text.find("assert"), std::string::npos);
  EXPECT_EQ(drv.stats().lines, 6u);
}

// Many threads hammer the driver concurrently: distinct sessions proceed
// in parallel, threads sharing a session serialize on its lock, and every
// session must end in a consistent state. Schema (ontology + queries +
// relation ids) is registered single-threaded first, per the Symbols
// contract.
TEST(ServeDriverTest, ConcurrentSessionsKeepConsistentAnswers) {
  ServeDriver drv(PinnedDatalog());
  ASSERT_EQ(drv.HandleLine(
                    "ontology O forall x, y (R(x,y) -> A(x)); "
                    "forall x . (A(x) -> B(x));")
                .rfind("ok ", 0),
            0u);
  const int kSessions = 4;
  const int kThreadsPerSession = 2;
  const int kOpsPerThread = 25;
  for (int s = 0; s < kSessions; ++s) {
    std::string name = "s" + std::to_string(s);
    ASSERT_EQ(drv.HandleLine("session " + name + " O"), "ok session " + name);
    ASSERT_EQ(drv.HandleLine("query " + name + " q q(x) :- B(x)"),
              "ok query q arity=1");
    // Register every constant + data relation id before fanning out.
    ASSERT_EQ(drv.HandleLine("assert " + name + " R(seed0,seed1)"), "ok");
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    for (int t = 0; t < kThreadsPerSession; ++t) {
      threads.emplace_back([&drv, &failures, s, t]() {
        std::string name = "s" + std::to_string(s);
        for (int i = 0; i < kOpsPerThread; ++i) {
          std::string c = "c" + std::to_string(t) + "_" + std::to_string(i);
          if (drv.HandleLine("assert " + name + " A(" + c + ")") != "ok") {
            ++failures;
          }
          std::string ans = drv.HandleLine("answers " + name + " q");
          if (ans.rfind("ok answers q n=", 0) != 0) ++failures;
          if (i % 3 == 0 &&
              drv.HandleLine("retract " + name + " A(" + c + ")") != "ok") {
            ++failures;
          }
        }
      });
    }
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(drv.stats().errors, 0u);
  // Post-hoc: every session's final answer set matches the retained facts:
  // per thread, the constants with i % 3 != 0 survive, plus seed0.
  const int kSurvivors = 1 + kThreadsPerSession * (kOpsPerThread -
                                                   (kOpsPerThread + 2) / 3);
  for (int s = 0; s < kSessions; ++s) {
    std::string name = "s" + std::to_string(s);
    std::string ans = drv.HandleLine("answers " + name + " q");
    std::string prefix = "ok answers q n=" + std::to_string(kSurvivors) + " ";
    EXPECT_EQ(ans.rfind(prefix, 0), 0u) << ans.substr(0, 60);
  }
}

}  // namespace
}  // namespace gfomq::serve
