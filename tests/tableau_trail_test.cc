// Unit and property tests for the trail-based destructive tableau engine:
//  - BranchTrail push/pop must restore a TableauBranch exactly — facts and
//    all three incremental fact indexes, the element table, the union-find,
//    the obligation queue (pins + hash filter), disequalities, forbidden
//    facts and the fresh-null budget — verified against a deep pre-push
//    snapshot, across single and nested levels.
//  - The trail engine must return the COW engine's verdict on the
//    differential ontology families.
//  - Pigeonhole regression: nogood learning must actually prune sibling
//    branches (`nogood_prunes > 0`) with the verdict unchanged and zero
//    COW copies.
//  - Learned-nogood soundness property: replaying any learned nogood's
//    decision set against a fresh COW search with those choices forced
//    closes the whole search (RefutesWithForcedChoices == kNo).
//  - Body-driver join-ordering regression: the bouquet-style workload
//    (huge guard relation, tiny body atom) must be served by indexed
//    lookups, not relation scans alone (`index_lookups > 0`).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "logic/normalize.h"
#include "logic/parser.h"
#include "reasoner/tableau.h"
#include "reasoner/trail.h"

namespace gfomq {
namespace {

// --- Deep branch snapshot -------------------------------------------------

struct BranchSnapshot {
  std::set<Fact> facts;
  size_t num_elems = 0;
  std::vector<bool> is_null;
  std::vector<std::string> names;
  std::vector<TableauPin> pinned;
  std::set<uint64_t> pin_filter;
  std::set<uint64_t> diseq;
  std::set<Fact> forbidden;
  std::vector<ElemId> canon;
  uint32_t fresh_nulls = 0;
  // Index introspection: the exact contents of the per-relation,
  // per-(rel, pos, elem) and per-element fact lists, as sorted copies.
  std::map<uint32_t, std::multiset<Fact>> by_rel;
  std::map<std::tuple<uint32_t, uint32_t, ElemId>, std::multiset<Fact>> by_pos;
  std::map<ElemId, std::multiset<Fact>> by_elem;

  bool operator==(const BranchSnapshot&) const = default;
};

BranchSnapshot Snap(const TableauBranch& b, const std::vector<uint32_t>& rels) {
  BranchSnapshot s;
  const Instance& inst = b.I();
  s.facts = inst.facts();
  s.num_elems = inst.NumElements();
  for (ElemId e = 0; e < inst.NumElements(); ++e) {
    s.is_null.push_back(inst.IsNull(e));
    s.names.push_back(inst.ElemName(e));
  }
  s.pinned = b.pinned;
  s.pin_filter.insert(b.pin_filter.begin(), b.pin_filter.end());
  s.diseq.insert(b.diseq.begin(), b.diseq.end());
  s.forbidden = b.forbidden;
  s.canon = b.canon;
  s.fresh_nulls = b.fresh_nulls;
  for (uint32_t rel : rels) {
    std::multiset<Fact>& of = s.by_rel[rel];
    for (const Fact* f : inst.FactsOfPtr(rel)) of.insert(*f);
    uint32_t arity = static_cast<uint32_t>(inst.symbols()->RelArity(rel));
    for (uint32_t pos = 0; pos < arity; ++pos) {
      for (ElemId e = 0; e < inst.NumElements(); ++e) {
        std::multiset<Fact>& at = s.by_pos[{rel, pos, e}];
        for (const Fact* f : inst.FactsAtPtr(rel, pos, e)) at.insert(*f);
      }
    }
  }
  for (ElemId e = 0; e < inst.NumElements(); ++e) {
    std::multiset<Fact>& ct = s.by_elem[e];
    for (const Fact* f : inst.FactsContainingPtr(e)) ct.insert(*f);
  }
  return s;
}

void ExpectSnapshotsEqual(const BranchSnapshot& want,
                          const BranchSnapshot& got) {
  EXPECT_EQ(want.facts, got.facts);
  EXPECT_EQ(want.num_elems, got.num_elems);
  EXPECT_EQ(want.is_null, got.is_null);
  EXPECT_EQ(want.names, got.names);
  EXPECT_EQ(want.pinned, got.pinned);
  EXPECT_EQ(want.pin_filter, got.pin_filter);
  EXPECT_EQ(want.diseq, got.diseq);
  EXPECT_EQ(want.forbidden, got.forbidden);
  EXPECT_EQ(want.canon, got.canon);
  EXPECT_EQ(want.fresh_nulls, got.fresh_nulls);
  EXPECT_EQ(want.by_rel, got.by_rel);
  EXPECT_EQ(want.by_pos, got.by_pos);
  EXPECT_EQ(want.by_elem, got.by_elem);
}

// A branch with every kind of state populated, so pops have something to
// restore around: two constants, a null, facts in all relations, a pin, a
// disequality, a forbidden fact and a (synthetic) union-find entry.
TableauBranch SeedBranch(SymbolsPtr sym, const GuardedRule* rule) {
  TableauBranch b;
  b.inst = std::make_shared<Instance>(sym);
  ElemId a = b.inst->AddConstant("a");
  ElemId c = b.inst->AddConstant("c");
  ElemId n = b.inst->AddNull();
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_r = sym->Rel("R", 2);
  b.inst->AddFact(rel_a, {a});
  b.inst->AddFact(rel_r, {a, c});
  b.inst->AddFact(rel_r, {c, n});
  TableauPin pin;
  pin.rule = rule;
  pin.alt_index = 0;
  pin.unit_index = 0;
  pin.is_count = false;
  pin.binding = {a};
  b.pin_filter.insert(TableauPinHash(pin));
  b.pinned.push_back(std::move(pin));
  b.diseq.insert(DiseqPack(a, n));
  b.forbidden.insert(Fact{sym->Rel("B", 1), {c}});
  b.fresh_nulls = 1;
  return b;
}

TEST(TableauTrailTest, PushPopRestoresBranchExactly) {
  SymbolsPtr sym = MakeSymbols();
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  uint32_t rel_r = sym->Rel("R", 2);
  GuardedRule dummy;  // pins only need a stable address
  TableauBranch b = SeedBranch(sym, &dummy);
  std::vector<uint32_t> rels = {rel_a, rel_b, rel_r};

  BranchSnapshot before = Snap(b, rels);
  BranchTrail trail(&b);
  trail.PushLevel();

  // One mutation of every trail entry kind.
  EXPECT_TRUE(trail.AddFact(Fact{rel_b, {0}}));
  EXPECT_FALSE(trail.AddFact(Fact{rel_b, {0}}));  // no-op: not recorded
  EXPECT_TRUE(trail.RemoveFact(Fact{rel_r, {0, 1}}));
  EXPECT_FALSE(trail.RemoveFact(Fact{rel_r, {0, 1}}));
  ElemId fresh = trail.AddNull();
  ++b.fresh_nulls;
  EXPECT_TRUE(trail.AddFact(Fact{rel_r, {fresh, fresh}}));
  trail.SetCanon(fresh, 0);
  TableauPin pin;
  pin.rule = &dummy;
  pin.alt_index = 1;
  pin.unit_index = 0;
  pin.is_count = true;
  pin.binding = {1};
  trail.PushPin(std::move(pin));
  trail.RewritePinBinding(0, {2});
  EXPECT_TRUE(trail.InsertDiseq(DiseqPack(0, 1)));
  EXPECT_FALSE(trail.InsertDiseq(DiseqPack(0, 1)));
  EXPECT_TRUE(trail.EraseDiseq(DiseqPack(0, 2)));
  EXPECT_TRUE(trail.InsertForbidden(Fact{rel_a, {1}}));
  EXPECT_TRUE(trail.EraseForbidden(Fact{rel_b, {1}}));
  EXPECT_GT(trail.num_entries(), 0u);

  // The mutations actually happened.
  EXPECT_NE(before, Snap(b, rels));

  trail.PopLevel();
  ExpectSnapshotsEqual(before, Snap(b, rels));
  EXPECT_EQ(trail.num_entries(), 0u);
  EXPECT_EQ(trail.num_levels(), 0u);
}

TEST(TableauTrailTest, NestedLevelsRestoreEachMark) {
  SymbolsPtr sym = MakeSymbols();
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_b = sym->Rel("B", 1);
  uint32_t rel_r = sym->Rel("R", 2);
  GuardedRule dummy;
  TableauBranch b = SeedBranch(sym, &dummy);
  std::vector<uint32_t> rels = {rel_a, rel_b, rel_r};
  BranchTrail trail(&b);

  BranchSnapshot s0 = Snap(b, rels);
  trail.PushLevel();
  trail.AddFact(Fact{rel_b, {0}});
  ElemId n1 = trail.AddNull();
  ++b.fresh_nulls;
  trail.AddFact(Fact{rel_a, {n1}});

  BranchSnapshot s1 = Snap(b, rels);
  trail.PushLevel();
  trail.RemoveFact(Fact{rel_a, {n1}});
  trail.InsertForbidden(Fact{rel_a, {n1}});
  ElemId n2 = trail.AddNull();
  ++b.fresh_nulls;
  trail.AddFact(Fact{rel_r, {n1, n2}});

  BranchSnapshot s2 = Snap(b, rels);
  trail.PushLevel();
  trail.AddFact(Fact{rel_b, {n2}});
  trail.InsertDiseq(DiseqPack(n1, n2));

  trail.PopLevel();
  ExpectSnapshotsEqual(s2, Snap(b, rels));
  trail.PopLevel();
  ExpectSnapshotsEqual(s1, Snap(b, rels));
  trail.PopLevel();
  ExpectSnapshotsEqual(s0, Snap(b, rels));
}

// --- Cross-engine verdict parity on the differential ontologies -----------

Instance RandomInstance(SymbolsPtr sym, Rng& rng, int salt) {
  Instance d(sym);
  std::vector<ElemId> es;
  int n = 2 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) {
      es.push_back(d.AddNull());
    } else {
      es.push_back(d.AddConstant("e" + std::to_string(salt) + "_" +
                                 std::to_string(i)));
    }
  }
  for (const char* u : {"A", "B", "C"}) {
    uint32_t rel = sym->Rel(u, 1);
    for (ElemId e : es) {
      if (rng.Chance(0.4)) d.AddFact(rel, {e});
    }
  }
  for (const char* bi : {"R", "S"}) {
    uint32_t rel = sym->Rel(bi, 2);
    for (ElemId x : es) {
      for (ElemId y : es) {
        if (rng.Chance(0.3)) d.AddFact(rel, {x, y});
      }
    }
  }
  return d;
}

const char* kOntologies[] = {
    "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));",
    "forall x . (A(x) -> exists y (R(x,y) & B(y)));",
    "forall x . (A(x) -> B(x) | C(x)); forall x . (B(x) & C(x) -> false);",
    "forall x . (A(x) -> forall y (R(x,y) -> B(y)));",
    "forall x . (A(x) -> exists>=2 y (R(x,y))); "
    "forall x . (B(x) -> exists<=1 y (R(x,y)));",
};

TEST(TableauTrailTest, TrailVerdictsMatchCowOnDifferentialOntologies) {
  Rng rng(20260808);
  for (const char* text : kOntologies) {
    SymbolsPtr sym = MakeSymbols();
    auto onto = ParseOntology(text, sym);
    ASSERT_TRUE(onto.ok()) << onto.status().ToString();
    auto rules = NormalizeOntology(*onto);
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    TableauBudget cow_budget;
    TableauBudget trail_budget;
    trail_budget.engine = TableauEngine::kTrail;
    for (int round = 0; round < 15; ++round) {
      Instance d = RandomInstance(sym, rng, round);
      Tableau cow(*rules, cow_budget);
      Tableau trail(*rules, trail_budget);
      EXPECT_EQ(trail.IsConsistent(d), cow.IsConsistent(d))
          << text << " round=" << round;
      EXPECT_EQ(trail.stats().cow_copies, 0u);
    }
  }
}

// --- Pigeonhole: nogood learning must prune ------------------------------

// Same construction as the bench family: every pigeon picks one of `holes`
// colors, D-linked pigeons must differ. A clique of holes+1 pigeons is
// inconsistent; the rule set is merge-free and monotone, so nogood
// learning is eligible.
RuleSet PigeonholeRules(SymbolsPtr sym, uint32_t holes) {
  RuleSet rules;
  rules.symbols = sym;
  GuardedRule choose;
  choose.num_vars = 1;
  choose.guard = Lit::Atom(sym->Rel("P", 1), {0});
  for (uint32_t h = 0; h < holes; ++h) {
    HeadAlt alt;
    alt.lits.push_back(Lit::Atom(sym->Rel("H" + std::to_string(h), 1), {0}));
    choose.head.push_back(alt);
  }
  rules.rules.push_back(choose);
  for (uint32_t h = 0; h < holes; ++h) {
    uint32_t rel_h = sym->Rel("H" + std::to_string(h), 1);
    GuardedRule conflict;
    conflict.num_vars = 2;
    conflict.guard = Lit::Atom(sym->Rel("D", 2), {0, 1});
    conflict.body.push_back(Lit::Atom(rel_h, {0}));
    conflict.body.push_back(Lit::Atom(rel_h, {1}));
    HeadAlt ff;
    ff.is_false = true;
    conflict.head.push_back(ff);
    rules.rules.push_back(conflict);
  }
  return rules;
}

Instance PigeonClique(SymbolsPtr sym, uint32_t pigeons) {
  Instance d(sym);
  uint32_t rel_p = sym->Rel("P", 1);
  uint32_t rel_d = sym->Rel("D", 2);
  std::vector<ElemId> es;
  for (uint32_t i = 0; i < pigeons; ++i) {
    es.push_back(d.AddConstant("p" + std::to_string(i)));
    d.AddFact(rel_p, {es.back()});
  }
  for (ElemId x : es) {
    for (ElemId y : es) {
      if (x != y) d.AddFact(rel_d, {x, y});
    }
  }
  return d;
}

TableauBudget PigeonholeBudget() {
  TableauBudget budget;
  budget.max_steps = 5000000;
  budget.max_branches = 1000000;
  return budget;
}

TEST(TableauTrailTest, PigeonholeNogoodPruningRegression) {
  SymbolsPtr sym = MakeSymbols();
  constexpr uint32_t kPigeons = 6;
  RuleSet rules = PigeonholeRules(sym, kPigeons - 1);
  Instance clique = PigeonClique(sym, kPigeons);
  Instance fits = PigeonClique(sym, kPigeons - 1);

  TableauBudget cow_budget = PigeonholeBudget();
  TableauBudget trail_budget = PigeonholeBudget();
  trail_budget.engine = TableauEngine::kTrail;

  Tableau cow(rules, cow_budget);
  Tableau trail(rules, trail_budget);

  // Verdicts unchanged...
  EXPECT_EQ(cow.IsConsistent(clique), Certainty::kNo);
  EXPECT_EQ(trail.IsConsistent(clique), Certainty::kNo);
  // ...but the trail pass replays zero COW copies, learns conflict
  // clauses, and prunes sibling colorings with them.
  EXPECT_EQ(trail.stats().cow_copies, 0u);
  EXPECT_GT(trail.stats().trail_entries, 0u);
  EXPECT_GT(trail.stats().pop_levels, 0u);
  EXPECT_GT(trail.stats().nogoods_learned, 0u);
  EXPECT_GT(trail.stats().nogood_prunes, 0u);
  EXPECT_FALSE(trail.learned_nogoods().empty());
  // Pruning is real work saved: strictly fewer branch openings than the
  // exhaustive COW exploration of the same inconsistent clique.
  EXPECT_LT(trail.stats().branches_opened, cow.stats().branches_opened);

  // The consistent sibling stays consistent under the trail engine.
  EXPECT_EQ(trail.IsConsistent(fits), Certainty::kYes);
  EXPECT_EQ(cow.IsConsistent(fits), Certainty::kYes);

  // Learning off: same verdict, no clauses, no prunes.
  TableauBudget off = trail_budget;
  off.learn_nogoods = false;
  Tableau no_learn(rules, off);
  EXPECT_EQ(no_learn.IsConsistent(clique), Certainty::kNo);
  EXPECT_EQ(no_learn.stats().nogoods_learned, 0u);
  EXPECT_EQ(no_learn.stats().nogood_prunes, 0u);
  EXPECT_TRUE(no_learn.learned_nogoods().empty());
}

// --- Learned-nogood soundness property -----------------------------------

TEST(TableauTrailTest, LearnedNogoodsRefuteUnderForcedReplay) {
  SymbolsPtr sym = MakeSymbols();
  constexpr uint32_t kPigeons = 5;
  RuleSet rules = PigeonholeRules(sym, kPigeons - 1);
  Instance clique = PigeonClique(sym, kPigeons);

  TableauBudget trail_budget = PigeonholeBudget();
  trail_budget.engine = TableauEngine::kTrail;
  Tableau trail(rules, trail_budget);
  ASSERT_EQ(trail.IsConsistent(clique), Certainty::kNo);
  ASSERT_FALSE(trail.learned_nogoods().empty());

  size_t checked = 0;
  for (const Nogood& ng : trail.learned_nogoods()) {
    if (checked >= 50) break;  // property sample; replays are full searches
    ++checked;
    // Structural sanity of the recorded decisions.
    for (const NogoodDecision& d : ng.decisions) {
      ASSERT_LT(d.rule_index, rules.rules.size());
      ASSERT_LT(d.alt_index, rules.rules[d.rule_index].head.size());
      for (ElemId e : d.binding) ASSERT_LT(e, clique.NumElements());
    }
    // Soundness: forcing the nogood's choices closes the whole search.
    Tableau replay(rules, PigeonholeBudget());
    EXPECT_EQ(replay.RefutesWithForcedChoices(clique, ng), Certainty::kNo)
        << "nogood with " << ng.decisions.size()
        << " decisions at depth " << ng.depth << " did not refute";
  }
}

// --- Body-driver join ordering (bouquet index_lookups regression) ---------

// The bouquet workload shape: a huge guard relation R and a tiny body atom
// B. Before the body-driver fix, FindObligation enumerated R wholesale
// (relation scans only, `index_lookups: 0`); driving off B turns the guard
// lookup into indexed (rel, pos, elem) probes.
TEST(TableauTrailTest, BodyDriverServesGuardFromIndex) {
  SymbolsPtr sym = MakeSymbols();
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));",
      sym);
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  auto rules = NormalizeOntology(*onto);
  ASSERT_TRUE(rules.ok());

  Instance d(sym);
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_r = sym->Rel("R", 2);
  std::vector<ElemId> es;
  for (int i = 0; i < 8; ++i) {
    es.push_back(d.AddConstant("e" + std::to_string(i)));
  }
  d.AddFact(rel_a, {es[0]});  // exactly one seed for the tiny B chain
  for (ElemId x : es) {
    for (ElemId y : es) d.AddFact(rel_r, {x, y});  // dense guard relation
  }

  Tableau indexed(*rules);
  EXPECT_EQ(indexed.IsConsistent(d), Certainty::kYes);
  EXPECT_GT(indexed.stats().index_lookups, 0u)
      << "guard matching fell back to relation scans only";

  // The naive reference must agree on the verdict (it has no indexes, so
  // no index_lookups assertion there).
  Tableau naive(*rules, {}, /*naive_matching=*/true);
  EXPECT_EQ(naive.IsConsistent(d), Certainty::kYes);
}

}  // namespace
}  // namespace gfomq
