// Unit and concurrency suites for the sharded consistency cache:
//  - LRU bounding, eviction counters, first-writer-wins semantics.
//  - CanonicalKey soundness: equal keys only for isomorphic content,
//    invariance under constant renaming and insertion order.
//  - Hammering: 8 pool workers race lookups and conflicting inserts on a
//    small key space; every key must resolve to one canonical verdict.
//  - Integration: a parallel bouquet scan sharing one solver across 8
//    workers produces the sequential verdict while the shared cache takes
//    concurrent traffic. Run under ThreadSanitizer (the tsan preset does).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "logic/parser.h"
#include "reasoner/bouquet.h"
#include "reasoner/certain.h"
#include "reasoner/consistency_cache.h"

namespace gfomq {
namespace {

TEST(ConsistencyCacheTest, LookupMissThenHit) {
  ConsistencyCache cache(64);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", Certainty::kYes);
  auto hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Certainty::kYes);
  ConsistencyCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);
}

TEST(ConsistencyCacheTest, FirstWriterWins) {
  ConsistencyCache cache(64);
  cache.Insert("k", Certainty::kNo);
  cache.Insert("k", Certainty::kYes);  // must not overwrite
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Certainty::kNo);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ConsistencyCacheTest, LruBoundsSizeAndEvicts) {
  // capacity 16 over 16 shards = one entry per shard: every shard keeps
  // only its most recent key.
  ConsistencyCache cache(16);
  for (int i = 0; i < 512; ++i) {
    cache.Insert("key" + std::to_string(i), Certainty::kYes);
  }
  EXPECT_LE(cache.size(), 16u);
  ConsistencyCacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 512u);
  EXPECT_EQ(s.evictions, 512u - cache.size());
}

TEST(ConsistencyCacheTest, LruKeepsRecentlyTouchedKeys) {
  // capacity 32 over 16 shards = two entries per shard. Generate keys that
  // land in "hot"'s shard (same modular hash the cache uses), so the LRU
  // discipline within one shard is fully deterministic.
  ConsistencyCache cache(32);
  auto shard_of = [](const std::string& key) {
    return std::hash<std::string>{}(key) % ConsistencyCache::kShards;
  };
  size_t hot_shard = shard_of("hot");
  std::vector<std::string> colliding;
  for (int i = 0; colliding.size() < 4; ++i) {
    std::string k = "cold" + std::to_string(i);
    if (shard_of(k) == hot_shard) colliding.push_back(k);
  }

  cache.Insert("hot", Certainty::kYes);
  cache.Insert(colliding[0], Certainty::kNo);  // shard: [c0, hot]
  ASSERT_TRUE(cache.Lookup("hot").has_value());  // touch: [hot, c0]
  cache.Insert(colliding[1], Certainty::kNo);  // evicts c0: [c1, hot]
  EXPECT_FALSE(cache.Lookup(colliding[0]).has_value());
  ASSERT_TRUE(cache.Lookup("hot").has_value());  // touch: [hot, c1]
  // Two same-shard inserts with no touch in between evict the hot key.
  cache.Insert(colliding[2], Certainty::kNo);
  cache.Insert(colliding[3], Certainty::kNo);
  EXPECT_FALSE(cache.Lookup("hot").has_value());
  EXPECT_GE(cache.stats().evictions, 3u);
}

TEST(ConsistencyCacheTest, CanonicalKeyInvariantUnderRenaming) {
  SymbolsPtr sym = MakeSymbols();
  uint32_t rel_a = sym->Rel("A", 1);
  uint32_t rel_r = sym->Rel("R", 2);

  Instance d1(sym);
  ElemId a = d1.AddConstant("a");
  ElemId b = d1.AddConstant("b");
  d1.AddFact(rel_a, {a});
  d1.AddFact(rel_r, {a, b});

  // Same shape, different constant names, facts added in another order.
  Instance d2(sym);
  ElemId x = d2.AddConstant("x");
  ElemId y = d2.AddConstant("y");
  d2.AddFact(rel_r, {x, y});
  d2.AddFact(rel_a, {x});

  EXPECT_EQ(ConsistencyCache::CanonicalKey(d1),
            ConsistencyCache::CanonicalKey(d2));

  // A null is not a constant: replacing b by a labelled null changes the
  // key (nulls are mergeable during the chase, constants are not).
  Instance d3(sym);
  ElemId c = d3.AddConstant("c");
  ElemId n = d3.AddNull();
  d3.AddFact(rel_a, {c});
  d3.AddFact(rel_r, {c, n});
  EXPECT_NE(ConsistencyCache::CanonicalKey(d1),
            ConsistencyCache::CanonicalKey(d3));

  // Different structure, same fact count: different key.
  Instance d4(sym);
  ElemId p = d4.AddConstant("p");
  ElemId q = d4.AddConstant("q");
  d4.AddFact(rel_a, {q});
  d4.AddFact(rel_r, {p, q});
  EXPECT_NE(ConsistencyCache::CanonicalKey(d1),
            ConsistencyCache::CanonicalKey(d4));

  // Isolated elements contribute class counts.
  Instance d5(sym);
  ElemId a5 = d5.AddConstant("a");
  ElemId b5 = d5.AddConstant("b");
  d5.AddFact(rel_a, {a5});
  d5.AddFact(rel_r, {a5, b5});
  d5.AddConstant("iso");
  EXPECT_NE(ConsistencyCache::CanonicalKey(d1),
            ConsistencyCache::CanonicalKey(d5));
}

TEST(ConsistencyCacheTest, CanonicalKeyRenameOutMatchesTokens) {
  SymbolsPtr sym = MakeSymbols();
  uint32_t rel_r = sym->Rel("R", 2);
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(rel_r, {b, a});
  std::unordered_map<ElemId, uint32_t> rename;
  std::string key = ConsistencyCache::CanonicalKey(d, &rename);
  ASSERT_EQ(rename.size(), 2u);
  // First occurrence over the sorted fact list: R(b,a) names b first.
  EXPECT_EQ(rename[b], 0u);
  EXPECT_EQ(rename[a], 1u);
  EXPECT_NE(key.find("c0"), std::string::npos);
  EXPECT_NE(key.find("c1"), std::string::npos);
}

// 8 workers race conflicting inserts and lookups over a small key space.
// Correctness contract under contention: per key, the verdict is fixed by
// whichever insert lands first, and every subsequent observation (by any
// worker) returns exactly that verdict. Detected failures: torn reads,
// lost first-writer-wins, shard mutex misuse (the tsan preset runs this).
TEST(ConsistencyCacheTest, ParallelHammeringOneVerdictPerKey) {
  constexpr int kKeys = 64;
  constexpr int kWorkers = 8;
  constexpr int kOpsPerWorker = 4000;
  ConsistencyCache cache(1 << 10);

  // 0 = unseen, otherwise 1 + static_cast<int>(verdict).
  std::array<std::atomic<int>, kKeys> observed{};
  std::atomic<int> disagreements{0};

  ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      uint64_t state = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1);
      auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
      };
      for (int op = 0; op < kOpsPerWorker; ++op) {
        int k = static_cast<int>(next() % kKeys);
        std::string key = "inst" + std::to_string(k);
        Certainty mine =
            (next() % 2 == 0) ? Certainty::kYes : Certainty::kNo;
        cache.Insert(key, mine);
        auto got = cache.Lookup(key);
        if (!got.has_value()) continue;  // evicted between the two calls
        int tag = 1 + static_cast<int>(*got);
        int expected = 0;
        if (!observed[static_cast<size_t>(k)].compare_exchange_strong(
                expected, tag) &&
            expected != tag) {
          disagreements.fetch_add(1);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_TRUE(pool.status().ok());
  EXPECT_EQ(disagreements.load(), 0);

  // The canonical verdict is still served after the dust settles.
  for (int k = 0; k < kKeys; ++k) {
    int tag = observed[static_cast<size_t>(k)].load();
    if (tag == 0) continue;
    auto got = cache.Lookup("inst" + std::to_string(k));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(1 + static_cast<int>(*got), tag) << k;
  }
}

// The real traffic shape: a parallel bouquet scan shares one solver (and
// thus one cache) across 8 workers. The verdict must equal the sequential
// one, and the scan must actually exercise the cache concurrently.
TEST(ConsistencyCacheTest, ParallelBouquetScanSharesOneCache) {
  auto onto = ParseOntology(
      "forall x . (A(x) -> B(x)); forall x, y (R(x,y) -> (B(x) -> B(y)));");
  ASSERT_TRUE(onto.ok());

  BouquetOptions opts;
  opts.max_outdegree = 2;

  auto seq_solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(seq_solver.ok());
  opts.num_threads = 1;
  MetaDecision seq = DecidePtimeByBouquets(*seq_solver, onto->symbols,
                                           onto->Signature(), opts);

  auto par_solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(par_solver.ok());
  opts.num_threads = 8;
  MetaDecision par = DecidePtimeByBouquets(*par_solver, onto->symbols,
                                           onto->Signature(), opts);

  EXPECT_EQ(par.ptime, seq.ptime);
  EXPECT_EQ(par.bouquets_checked, seq.bouquets_checked);
  EXPECT_EQ(par.violation.has_value(), seq.violation.has_value());

  ConsistencyCacheStats cache = par_solver->cache_stats();
  EXPECT_GT(cache.Lookups(), 0u);
  EXPECT_GT(cache.insertions, 0u);

  // A second scan on the warm solver is served from the cache and agrees.
  MetaDecision warm = DecidePtimeByBouquets(*par_solver, onto->symbols,
                                            onto->Signature(), opts);
  EXPECT_EQ(warm.ptime, seq.ptime);
  EXPECT_EQ(warm.bouquets_checked, seq.bouquets_checked);
  EXPECT_GT(par_solver->cache_stats().hits, cache.hits);
}

}  // namespace
}  // namespace gfomq
