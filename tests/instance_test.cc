#include "instance/instance.h"

#include <gtest/gtest.h>

namespace gfomq {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t R = sym->Rel("R", 2);
  uint32_t Q3 = sym->Rel("Q", 3);
};

TEST_F(InstanceTest, ConstantsAreDeduplicated) {
  Instance d(sym);
  ElemId a1 = d.AddConstant("a");
  ElemId a2 = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(d.NumElements(), 2u);
  EXPECT_FALSE(d.IsNull(a1));
  EXPECT_EQ(d.ElemName(a1), "a");
}

TEST_F(InstanceTest, NullsAreFresh) {
  Instance d(sym);
  ElemId n1 = d.AddNull();
  ElemId n2 = d.AddNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(d.IsNull(n1));
}

TEST_F(InstanceTest, FactsDeduplicate) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  EXPECT_TRUE(d.AddFact(R, {a, b}));
  EXPECT_FALSE(d.AddFact(R, {a, b}));
  EXPECT_TRUE(d.HasFact(R, {a, b}));
  EXPECT_FALSE(d.HasFact(R, {b, a}));
  EXPECT_EQ(d.NumFacts(), 1u);
}

TEST_F(InstanceTest, NeighborsFollowGaifmanGraph) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(A, {c});
  EXPECT_EQ(d.Neighbors(a), std::vector<ElemId>{b});
  EXPECT_TRUE(d.Neighbors(c).empty());
}

TEST_F(InstanceTest, MaximalGuardedSets) {
  // Q(a,b,c) makes {a,b,c} guarded; R(a,b) is subsumed; isolated d is a
  // singleton guarded set.
  Instance inst(sym);
  ElemId a = inst.AddConstant("a");
  ElemId b = inst.AddConstant("b");
  ElemId c = inst.AddConstant("c");
  ElemId e = inst.AddConstant("d");
  inst.AddFact(Q3, {a, b, c});
  inst.AddFact(R, {a, b});
  inst.AddFact(A, {e});
  auto sets = inst.MaximalGuardedSets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<ElemId>{a, b, c}));
  EXPECT_EQ(sets[1], (std::vector<ElemId>{e}));
  EXPECT_TRUE(inst.IsGuardedSet({a, b}));
  EXPECT_TRUE(inst.IsGuardedSet({a, c}));
  EXPECT_FALSE(inst.IsGuardedSet({a, e}));
}

TEST_F(InstanceTest, InducedSubKeepsInsideFacts) {
  Instance inst(sym);
  ElemId a = inst.AddConstant("a");
  ElemId b = inst.AddConstant("b");
  ElemId c = inst.AddConstant("c");
  inst.AddFact(R, {a, b});
  inst.AddFact(R, {b, c});
  Instance sub = inst.InducedSub({a, b});
  EXPECT_TRUE(sub.HasFact(R, {a, b}));
  EXPECT_FALSE(sub.HasFact(R, {b, c}));
}

TEST_F(InstanceTest, AppendDisjointOffsetsElements) {
  Instance d1(sym);
  ElemId a = d1.AddConstant("a");
  d1.AddFact(A, {a});
  Instance d2(sym);
  ElemId b = d2.AddConstant("b");
  d2.AddFact(A, {b});
  ElemId offset = d1.AppendDisjoint(d2);
  EXPECT_EQ(offset, 1u);
  EXPECT_EQ(d1.NumElements(), 2u);
  EXPECT_EQ(d1.NumFacts(), 2u);
  EXPECT_TRUE(d1.HasFact(A, {offset + b}));
}

TEST_F(InstanceTest, SignatureListsUsedRelations) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(A, {a});
  auto sig = d.Signature();
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(sig[0], A);
}

}  // namespace
}  // namespace gfomq
