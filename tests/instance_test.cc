#include "instance/instance.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace gfomq {
namespace {

// Rebuild-from-scratch oracle: the incremental indexes must always agree
// with what a fresh scan of the fact set would produce.
void ExpectIndexesConsistent(const Instance& d) {
  // Per-relation lists partition the fact set.
  size_t indexed = 0;
  for (uint32_t rel : d.Signature()) {
    for (const Fact* f : d.FactsOfPtr(rel)) {
      EXPECT_EQ(f->rel, rel);
      EXPECT_TRUE(d.HasFact(*f));
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, d.NumFacts());
  for (const Fact& f : d.facts()) {
    // Every fact is reachable through every (rel,pos,elem) key it defines
    // and through every element list it touches.
    for (uint32_t i = 0; i < f.args.size(); ++i) {
      const auto& at = d.FactsAtPtr(f.rel, i, f.args[i]);
      EXPECT_EQ(std::count_if(at.begin(), at.end(),
                              [&](const Fact* p) { return *p == f; }),
                1);
      const auto& cont = d.FactsContainingPtr(f.args[i]);
      EXPECT_EQ(std::count_if(cont.begin(), cont.end(),
                              [&](const Fact* p) { return *p == f; }),
                1)
          << "element list must hold each fact exactly once";
    }
  }
}

class InstanceTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t R = sym->Rel("R", 2);
  uint32_t Q3 = sym->Rel("Q", 3);
};

TEST_F(InstanceTest, ConstantsAreDeduplicated) {
  Instance d(sym);
  ElemId a1 = d.AddConstant("a");
  ElemId a2 = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(d.NumElements(), 2u);
  EXPECT_FALSE(d.IsNull(a1));
  EXPECT_EQ(d.ElemName(a1), "a");
}

TEST_F(InstanceTest, NullsAreFresh) {
  Instance d(sym);
  ElemId n1 = d.AddNull();
  ElemId n2 = d.AddNull();
  EXPECT_NE(n1, n2);
  EXPECT_TRUE(d.IsNull(n1));
}

TEST_F(InstanceTest, FactsDeduplicate) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  EXPECT_TRUE(d.AddFact(R, {a, b}));
  EXPECT_FALSE(d.AddFact(R, {a, b}));
  EXPECT_TRUE(d.HasFact(R, {a, b}));
  EXPECT_FALSE(d.HasFact(R, {b, a}));
  EXPECT_EQ(d.NumFacts(), 1u);
}

TEST_F(InstanceTest, NeighborsFollowGaifmanGraph) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(A, {c});
  EXPECT_EQ(d.Neighbors(a), std::vector<ElemId>{b});
  EXPECT_TRUE(d.Neighbors(c).empty());
}

TEST_F(InstanceTest, MaximalGuardedSets) {
  // Q(a,b,c) makes {a,b,c} guarded; R(a,b) is subsumed; isolated d is a
  // singleton guarded set.
  Instance inst(sym);
  ElemId a = inst.AddConstant("a");
  ElemId b = inst.AddConstant("b");
  ElemId c = inst.AddConstant("c");
  ElemId e = inst.AddConstant("d");
  inst.AddFact(Q3, {a, b, c});
  inst.AddFact(R, {a, b});
  inst.AddFact(A, {e});
  auto sets = inst.MaximalGuardedSets();
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<ElemId>{a, b, c}));
  EXPECT_EQ(sets[1], (std::vector<ElemId>{e}));
  EXPECT_TRUE(inst.IsGuardedSet({a, b}));
  EXPECT_TRUE(inst.IsGuardedSet({a, c}));
  EXPECT_FALSE(inst.IsGuardedSet({a, e}));
}

TEST_F(InstanceTest, InducedSubKeepsInsideFacts) {
  Instance inst(sym);
  ElemId a = inst.AddConstant("a");
  ElemId b = inst.AddConstant("b");
  ElemId c = inst.AddConstant("c");
  inst.AddFact(R, {a, b});
  inst.AddFact(R, {b, c});
  Instance sub = inst.InducedSub({a, b});
  EXPECT_TRUE(sub.HasFact(R, {a, b}));
  EXPECT_FALSE(sub.HasFact(R, {b, c}));
}

TEST_F(InstanceTest, AppendDisjointOffsetsElements) {
  Instance d1(sym);
  ElemId a = d1.AddConstant("a");
  d1.AddFact(A, {a});
  Instance d2(sym);
  ElemId b = d2.AddConstant("b");
  d2.AddFact(A, {b});
  ElemId offset = d1.AppendDisjoint(d2);
  EXPECT_EQ(offset, 1u);
  EXPECT_EQ(d1.NumElements(), 2u);
  EXPECT_EQ(d1.NumFacts(), 2u);
  EXPECT_TRUE(d1.HasFact(A, {offset + b}));
}

TEST_F(InstanceTest, SignatureListsUsedRelations) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(A, {a});
  auto sig = d.Signature();
  ASSERT_EQ(sig.size(), 1u);
  EXPECT_EQ(sig[0], A);
}

TEST_F(InstanceTest, IndexLookupsMatchScans) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {a, c});
  d.AddFact(R, {b, a});
  d.AddFact(A, {a});
  ExpectIndexesConsistent(d);
  EXPECT_EQ(d.FactsOfPtr(R).size(), 3u);
  EXPECT_EQ(d.FactsAtPtr(R, 0, a).size(), 2u);
  EXPECT_EQ(d.FactsAtPtr(R, 1, a).size(), 1u);
  EXPECT_EQ(d.FactsContainingPtr(a).size(), 4u);
  EXPECT_TRUE(d.FactsAtPtr(R, 0, c).empty());
  EXPECT_TRUE(d.FactsOfPtr(Q3).empty());
}

TEST_F(InstanceTest, SelfLoopIndexedOncePerElement) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(R, {a, a});
  EXPECT_EQ(d.FactsContainingPtr(a).size(), 1u);
  EXPECT_EQ(d.FactsAtPtr(R, 0, a).size(), 1u);
  EXPECT_EQ(d.FactsAtPtr(R, 1, a).size(), 1u);
  ExpectIndexesConsistent(d);
}

TEST_F(InstanceTest, RemoveFactDeindexes) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, a});
  EXPECT_TRUE(d.RemoveFact(Fact{R, {a, b}}));
  EXPECT_FALSE(d.RemoveFact(Fact{R, {a, b}}));
  EXPECT_EQ(d.NumFacts(), 1u);
  EXPECT_TRUE(d.FactsAtPtr(R, 0, a).empty());
  EXPECT_EQ(d.FactsContainingPtr(a).size(), 1u);
  EXPECT_EQ(d.Neighbors(a), std::vector<ElemId>{b});
  ExpectIndexesConsistent(d);
}

TEST_F(InstanceTest, CopyRebuildsIndexesIndependently) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(R, {a, b});
  Instance copy = d;
  // Mutating the copy must not disturb the original's indexes (they hold
  // pointers into their own fact sets).
  copy.AddFact(R, {b, a});
  copy.RemoveFact(Fact{R, {a, b}});
  EXPECT_EQ(d.FactsOfPtr(R).size(), 1u);
  EXPECT_EQ(copy.FactsOfPtr(R).size(), 1u);
  EXPECT_TRUE(d.HasFact(R, {a, b}));
  EXPECT_FALSE(copy.HasFact(R, {a, b}));
  ExpectIndexesConsistent(d);
  ExpectIndexesConsistent(copy);
  Instance assigned(sym);
  assigned = d;
  ExpectIndexesConsistent(assigned);
}

TEST_F(InstanceTest, DerivedInstancesKeepIndexesConsistent) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  d.AddFact(Q3, {a, b, c});
  Instance sub = d.InducedSub({a, b});
  ExpectIndexesConsistent(sub);
  EXPECT_EQ(sub.FactsOfPtr(R).size(), 1u);
  Instance uni = d;
  ElemId offset = uni.AppendDisjoint(d);
  ExpectIndexesConsistent(uni);
  EXPECT_EQ(uni.FactsAtPtr(R, 0, offset + a).size(), 1u);
}

TEST_F(InstanceTest, RandomizedIndexMaintenance) {
  Rng rng(2026);
  Instance d(sym);
  std::vector<ElemId> es;
  for (int i = 0; i < 8; ++i) {
    es.push_back(d.AddConstant("r" + std::to_string(i)));
  }
  std::vector<Fact> pool;
  for (ElemId u : es) {
    pool.push_back(Fact{A, {u}});
    for (ElemId v : es) pool.push_back(Fact{R, {u, v}});
  }
  for (int step = 0; step < 300; ++step) {
    const Fact& f = pool[rng.Below(pool.size())];
    if (rng.Chance(0.6)) {
      d.AddFact(f);
    } else {
      d.RemoveFact(f);
    }
  }
  ExpectIndexesConsistent(d);
}

TEST_F(InstanceTest, CheckFactValidatesWithoutMutating) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  EXPECT_TRUE(d.CheckFact(Fact{R, {a, a}}).ok());
  EXPECT_FALSE(d.CheckFact(Fact{R, {a}}).ok());
  EXPECT_FALSE(d.CheckFact(Fact{R, {a, a, a}}).ok());
  EXPECT_FALSE(d.CheckFact(Fact{R, {a, 7}}).ok());
  EXPECT_EQ(d.NumFacts(), 0u);
}

TEST_F(InstanceTest, RevisionStampsEveryMutation) {
  Instance d(sym);
  uint64_t r0 = d.revision();
  ElemId a = d.AddConstant("a");
  EXPECT_NE(d.revision(), r0);
  uint64_t r1 = d.revision();
  d.AddFact(A, {a});
  EXPECT_NE(d.revision(), r1);
  uint64_t r2 = d.revision();
  // No-op mutations must not invalidate caches keyed on the revision.
  EXPECT_FALSE(d.AddFact(A, {a}));
  EXPECT_FALSE(d.RemoveFact(Fact{R, {a, a}}));
  EXPECT_EQ(d.AddConstant("a"), a);
  EXPECT_EQ(d.revision(), r2);
  EXPECT_TRUE(d.RemoveFact(Fact{A, {a}}));
  EXPECT_NE(d.revision(), r2);
}

TEST_F(InstanceTest, RevisionSharedByCopiesUntilTheyDiverge) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  d.AddFact(A, {a});
  // An unmutated copy carries the same stamp (that is the cache-hit case)…
  Instance copy = d;
  EXPECT_EQ(copy.revision(), d.revision());
  Instance assigned(sym);
  assigned = d;
  EXPECT_EQ(assigned.revision(), d.revision());
  // …but as soon as either side mutates, the stamps split — even when both
  // sides mutate "in parallel", because revisions come from one global
  // counter (per-copy ++ would alias divergent twins).
  copy.AddFact(R, {a, a});
  d.AddFact(A, {d.AddConstant("b")});
  EXPECT_NE(copy.revision(), d.revision());
  EXPECT_NE(copy.revision(), assigned.revision());
}

TEST_F(InstanceTest, RevisionDistinguishesIndependentTwins) {
  // Equal content built independently gets distinct revisions: a cache
  // MISS (a recompute), never a wrong hit.
  Instance d1(sym), d2(sym);
  d1.AddFact(A, {d1.AddConstant("a")});
  d2.AddFact(A, {d2.AddConstant("a")});
  EXPECT_EQ(d1.facts(), d2.facts());
  EXPECT_NE(d1.revision(), d2.revision());
}

// The arity/range check must hold in release builds too (it used to be
// assert-only, silently admitting index-corrupting facts under NDEBUG).
using InstanceDeathTest = InstanceTest;

TEST_F(InstanceDeathTest, AddFactRejectsArityMismatchUnconditionally) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  EXPECT_DEATH(d.AddFact(R, {a}), "arity mismatch");
  EXPECT_DEATH(d.AddFact(Fact{A, {a, a}}), "arity mismatch");
}

TEST_F(InstanceDeathTest, AddFactRejectsUnknownElementUnconditionally) {
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  EXPECT_DEATH(d.AddFact(R, {a, 42}), "out of range");
}

}  // namespace
}  // namespace gfomq
