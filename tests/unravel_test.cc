#include "unravel/unravel.h"

#include <gtest/gtest.h>

#include "instance/guarded_tree.h"
#include "logic/parser.h"

namespace gfomq {
namespace {

class UnravelTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t R = sym->Rel("R", 2);

  Instance Cycle(int n) {
    Instance d(sym);
    std::vector<ElemId> es;
    for (int i = 0; i < n; ++i) {
      es.push_back(d.AddConstant("c" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      d.AddFact(R, {es[static_cast<size_t>(i)],
                    es[static_cast<size_t>((i + 1) % n)]});
    }
    return d;
  }

  // Star with root a and n leaves (Example 5 (2) of the paper).
  Instance Star(int n) {
    Instance d(sym);
    ElemId a = d.AddConstant("a");
    for (int i = 0; i < n; ++i) {
      ElemId b = d.AddConstant("b" + std::to_string(i));
      d.AddFact(R, {a, b});
    }
    return d;
  }
};

TEST_F(UnravelTest, CycleUnravelsToChains) {
  // Example 5 (1): the triangle's uGF-unravelling consists of three
  // isomorphic chains; it is guarded-tree decomposable while the original
  // cycle is not.
  Instance d = Cycle(3);
  EXPECT_FALSE(IsGuardedTreeDecomposable(d));
  Unravelling u = Unravel(d, UnravelKind::kUGF, 4);
  EXPECT_TRUE(u.truncated);  // the chains are infinite
  EXPECT_TRUE(IsGuardedTreeDecomposable(u.instance));
  EXPECT_EQ(u.root_bags.size(), 3u);
  // Each tree is a chain extending in both directions from its root bag:
  // at depth 4 that is 2 root elements plus 2 arms of 3 fresh elements,
  // and 1 + 2*3 facts.
  EXPECT_EQ(u.instance.NumElements(), 24u);
  EXPECT_EQ(u.instance.NumFacts(), 21u);
  // Chains: every element has Gaifman degree at most 2.
  for (ElemId e = 0; e < u.instance.NumElements(); ++e) {
    EXPECT_LE(u.instance.Neighbors(e).size(), 2u);
  }
  // The origin map is a homomorphism onto D.
  for (const Fact& f : u.instance.facts()) {
    Fact mapped = f;
    for (ElemId& x : mapped.args) x = u.origin[x];
    EXPECT_TRUE(d.HasFact(mapped));
  }
}

TEST_F(UnravelTest, UGFStarUnravellingGrowsUnboundedOutdegree) {
  // Example 5 (2): the uGF-unravelling of a depth-1 star keeps alternating
  // between its guarded sets, creating ever more leaves under each copy of
  // the root.
  Instance d = Star(3);
  Unravelling ugf = Unravel(d, UnravelKind::kUGF, 4);
  EXPECT_TRUE(ugf.truncated);
  // The uGC2-unravelling is finite: condition (c') forbids continuing
  // through the same intersection {a}, so each tree is a root bag plus one
  // layer of sibling bags.
  Unravelling ugc = Unravel(d, UnravelKind::kUGC2, 10);
  EXPECT_FALSE(ugc.truncated);
  EXPECT_LT(ugc.instance.NumFacts(), ugf.instance.NumFacts());
  // 3 trees x (root fact + 2 sibling facts).
  EXPECT_EQ(ugc.instance.NumFacts(), 9u);
}

TEST_F(UnravelTest, UGC2PreservesSuccessorCountsUGFDoesNot) {
  // Section 4 of the paper: with O = {∀x(∃≥4y R(x,y) → A(x))} and D the
  // star with 3 leaves, O,D ⊭ A(a), but in the uGF-unravelling the copies
  // of a accumulate unboundedly many successors, so O,D^u ⊨ A(a'). The
  // uGC2-unravelling preserves successor counts and stays at "no".
  Instance d = Star(3);
  auto onto = ParseOntology(
      "forall x . (exists>=4 y (R(x,y)) -> A(x));", sym);
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  auto q = ParseCq("q(x) :- A(x)", sym);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(solver->IsCertain(d, *q, {0}), Certainty::kNo);

  ToleranceCheck ugf = CheckUnravellingTolerance(*solver, d, *q, {0},
                                                 UnravelKind::kUGF, 6);
  EXPECT_EQ(ugf.on_original, Certainty::kNo);
  EXPECT_EQ(ugf.on_unravelling, Certainty::kYes);  // uGF is inappropriate

  ToleranceCheck ugc = CheckUnravellingTolerance(*solver, d, *q, {0},
                                                 UnravelKind::kUGC2, 6);
  EXPECT_EQ(ugc.on_unravelling, Certainty::kNo);  // uGC2 preserves counts
  EXPECT_FALSE(ugc.truncated);
}

TEST_F(UnravelTest, ToleranceExample6OddCycle) {
  // Example 6: E(c0) is certain on the odd cycle but not on its (bounded)
  // unravelling — O is not unravelling tolerant.
  auto onto = ParseOntology(
      "forall x . (A(x) -> (exists y (R(x,y) & A(y)) -> E(x)));"
      "forall x . (!A(x) -> (exists y (R(x,y) & !A(y)) -> E(x)));"
      "forall x, y (R(x,y) -> (E(x) -> E(y)) & (E(y) -> E(x)));",
      sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  auto q = ParseCq("q(x) :- E(x)", sym);
  ASSERT_TRUE(q.ok());
  Instance odd = Cycle(3);
  ToleranceCheck check = CheckUnravellingTolerance(*solver, odd, *q, {0},
                                                   UnravelKind::kUGF, 4);
  EXPECT_EQ(check.on_original, Certainty::kYes);
  EXPECT_EQ(check.on_unravelling, Certainty::kNo);
}

TEST_F(UnravelTest, ToleranceHornPropagationIsTolerant) {
  // A Horn propagation ontology is unravelling tolerant: answers agree.
  auto onto = ParseOntology(
      "forall x, y (R(x,y) -> (B(x) -> B(y)));", sym);
  ASSERT_TRUE(onto.ok());
  auto solver = CertainAnswerSolver::Create(*onto);
  ASSERT_TRUE(solver.ok());
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  ElemId c = d.AddConstant("c");
  d.AddFact(R, {a, b});
  d.AddFact(R, {b, c});
  d.AddFact(sym->Rel("B", 1), {a});
  auto q = ParseCq("q(x) :- B(x)", sym);
  ASSERT_TRUE(q.ok());
  // {b, c} is a maximal guarded set; check tolerance at c.
  ToleranceCheck check = CheckUnravellingTolerance(*solver, d, *q, {c},
                                                   UnravelKind::kUGF, 6);
  EXPECT_EQ(check.on_original, Certainty::kYes);
  EXPECT_EQ(check.on_unravelling, Certainty::kYes);
}

TEST_F(UnravelTest, UnravellingOfTreeIsIsomorphicallyStable) {
  // A path unravels to copies of itself (up to splitting per root bag).
  Instance d(sym);
  ElemId a = d.AddConstant("a");
  ElemId b = d.AddConstant("b");
  d.AddFact(R, {a, b});
  Unravelling u = Unravel(d, UnravelKind::kUGF, 10);
  EXPECT_FALSE(u.truncated);
  EXPECT_EQ(u.instance.NumFacts(), 1u);
  EXPECT_EQ(u.root_bags.size(), 1u);
}

}  // namespace
}  // namespace gfomq
