#include "logic/parser.h"

#include <gtest/gtest.h>

#include "logic/printer.h"

namespace gfomq {
namespace {

TEST(ParserTest, ParsesExample2FromPaper) {
  // ∀xy(R(x, y) → (A(x) ∨ ∃z S(y, z))) is in uGF(1).
  auto onto = ParseOntology(
      "forall x, y (R(x,y) -> A(x) | exists z (S(y,z)));");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  ASSERT_EQ(onto->sentences.size(), 1u);
  const Sentence& s = onto->sentences[0];
  EXPECT_EQ(s.Depth(), 1);
  EXPECT_FALSE(s.HasEqualityGuard());
  EXPECT_EQ(s.vars.size(), 2u);
}

TEST(ParserTest, ParsesEqualityGuardedSentence) {
  auto onto = ParseOntology("forall x . (A(x) -> B(x));");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  const Sentence& s = onto->sentences[0];
  EXPECT_TRUE(s.HasEqualityGuard());
  EXPECT_EQ(s.Depth(), 0);
}

TEST(ParserTest, ParsesFunctionality) {
  auto onto = ParseOntology("func F; invfunc G;");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  ASSERT_EQ(onto->sentences.size(), 2u);
  EXPECT_EQ(onto->sentences[0].kind, Sentence::Kind::kFunctionality);
  EXPECT_FALSE(onto->sentences[0].inverse);
  EXPECT_TRUE(onto->sentences[1].inverse);
}

TEST(ParserTest, ParsesCountingQuantifiers) {
  // O1 from the paper: Hand(x) -> exactly 5 fingers, written with >= and <=.
  auto onto = ParseOntology(
      "forall x . (Hand(x) -> exists>=5 y (hasFinger(x,y)) & "
      "exists<=5 y (hasFinger(x,y)));");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->sentences[0].Depth(), 1);
}

TEST(ParserTest, ParsesInnerForallAndEqualities) {
  auto onto = ParseOntology(
      "forall x, y (R(x,y) -> forall z (S(y,z) -> !(z = y)) & x != y);");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
}

TEST(ParserTest, RejectsUnguardedSentence) {
  // Guard misses variable y.
  auto onto = ParseOntology("forall x, y (A(x) -> B(y));");
  EXPECT_FALSE(onto.ok());
}

TEST(ParserTest, RejectsArityMismatch) {
  auto onto = ParseOntology("forall x . (A(x) -> exists y (A(x,y)));");
  EXPECT_FALSE(onto.ok());
}

TEST(ParserTest, RejectsStrayFreeVariable) {
  auto onto = ParseOntology("forall x . (A(x) -> B(y));");
  EXPECT_FALSE(onto.ok());
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseOntology("forall x (").ok());
  EXPECT_FALSE(ParseOntology("hello world").ok());
  EXPECT_FALSE(ParseOntology("forall x . (A(x) -> @)").ok());
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto onto = ParseOntology(
      "# a comment\n"
      "forall x . (A(x) -> B(x));  # trailing\n");
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  EXPECT_EQ(onto->sentences.size(), 1u);
}

TEST(ParserTest, PrintParseRoundTrip) {
  std::string text =
      "forall x, y (R(x,y) -> A(x) | exists z (S(y,z) & B(z)));\n"
      "forall x . (A(x) -> exists>=2 y (R(x,y)));\n"
      "func F;\n";
  auto onto = ParseOntology(text);
  ASSERT_TRUE(onto.ok()) << onto.status().ToString();
  std::string printed = OntologyToString(*onto);
  auto reparsed = ParseOntology(printed, onto->symbols);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                             << "\nprinted was:\n"
                             << printed;
  ASSERT_EQ(reparsed->sentences.size(), onto->sentences.size());
  for (size_t i = 0; i < onto->sentences.size(); ++i) {
    EXPECT_EQ(SentenceToString(onto->sentences[i], *onto->symbols),
              SentenceToString(reparsed->sentences[i], *onto->symbols));
  }
}

TEST(ParserTest, ImplicationIsSugarForNegationDisjunction) {
  auto f = ParseOntology("forall x . (A(x) -> B(x));");
  ASSERT_TRUE(f.ok());
  const FormulaPtr& body = f->sentences[0].body;
  ASSERT_EQ(body->kind(), FormulaKind::kOr);
  EXPECT_EQ(body->children()[0]->kind(), FormulaKind::kNot);
}

TEST(ParserTest, SharedSymbolsAccumulate) {
  SymbolsPtr sym = MakeSymbols();
  auto o1 = ParseOntology("forall x . (A(x) -> B(x));", sym);
  ASSERT_TRUE(o1.ok());
  auto o2 = ParseOntology("forall x . (B(x) -> C(x));", sym);
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(sym->FindRel("A"), 0);
  EXPECT_EQ(sym->FindRel("B"), 1);
  EXPECT_GE(sym->FindRel("C"), 2);
}

}  // namespace
}  // namespace gfomq
