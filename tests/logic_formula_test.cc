#include "logic/formula.h"

#include <gtest/gtest.h>

#include "logic/printer.h"
#include "logic/symbols.h"

namespace gfomq {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  SymbolsPtr sym = MakeSymbols();
  uint32_t A = sym->Rel("A", 1);
  uint32_t R = sym->Rel("R", 2);
  uint32_t S = sym->Rel("S", 2);
  uint32_t x = sym->Var("x");
  uint32_t y = sym->Var("y");
  uint32_t z = sym->Var("z");
};

TEST_F(FormulaTest, DepthOfQuantifierFree) {
  FormulaPtr f = Formula::And(Formula::Atom(A, {x}),
                              Formula::Not(Formula::Atom(R, {x, y})));
  EXPECT_EQ(f->Depth(), 0);
}

TEST_F(FormulaTest, DepthCountsNesting) {
  // A(x) | exists z (S(y,z) & exists w(...)) would be depth 2; build depth 1.
  FormulaPtr inner = Formula::Exists({z}, Formula::Atom(S, {y, z}),
                                     Formula::True());
  FormulaPtr f = Formula::Or(Formula::Atom(A, {x}), inner);
  EXPECT_EQ(f->Depth(), 1);

  FormulaPtr nested =
      Formula::Exists({y}, Formula::Atom(R, {x, y}), inner);
  EXPECT_EQ(nested->Depth(), 2);
}

TEST_F(FormulaTest, CountingQuantifierContributesDepth) {
  FormulaPtr c =
      Formula::CountQ(true, 5, y, Formula::Atom(R, {x, y}), Formula::True());
  EXPECT_EQ(c->Depth(), 1);
}

TEST_F(FormulaTest, FreeVarsRespectBinding) {
  FormulaPtr f = Formula::Exists({z}, Formula::Atom(S, {y, z}),
                                 Formula::Atom(A, {z}));
  std::vector<uint32_t> free = f->FreeVars();
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0], y);
  std::vector<uint32_t> all = f->AllVars();
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(FormulaTest, ValidateAcceptsProperGuards) {
  // Example 2 of the paper: forall x,y (R(x,y) -> A(x) | exists z S(y,z)).
  FormulaPtr body = Formula::Or(
      Formula::Atom(A, {x}),
      Formula::Exists({z}, Formula::Atom(S, {y, z}), Formula::True()));
  EXPECT_TRUE(ValidateGuarded(*body, *sym).ok());
  EXPECT_EQ(body->Depth(), 1);
}

TEST_F(FormulaTest, ValidateRejectsUnguardedBodyVariable) {
  // exists z (S(y,z) & A(x)): x free in body but not in the guard.
  FormulaPtr f = Formula::Exists({z}, Formula::Atom(S, {y, z}),
                                 Formula::Atom(A, {x}));
  EXPECT_FALSE(ValidateGuarded(*f, *sym).ok());
}

TEST_F(FormulaTest, ValidateRejectsArityMismatch) {
  FormulaPtr f = Formula::Atom(R, {x});
  EXPECT_FALSE(ValidateGuarded(*f, *sym).ok());
}

TEST_F(FormulaTest, NnfPushesNegationThroughQuantifiers) {
  // !(exists y (R(x,y) & A(y)))  ==>  forall y (R(x,y) -> !A(y))
  FormulaPtr f = Formula::Not(Formula::Exists(
      {y}, Formula::Atom(R, {x, y}), Formula::Atom(A, {y})));
  FormulaPtr nnf = ToNnf(f);
  ASSERT_EQ(nnf->kind(), FormulaKind::kForall);
  EXPECT_EQ(nnf->body()->kind(), FormulaKind::kNot);
  EXPECT_EQ(nnf->body()->child()->kind(), FormulaKind::kAtom);
}

TEST_F(FormulaTest, NnfDualizesCounting) {
  FormulaPtr f = Formula::Not(
      Formula::CountQ(true, 3, y, Formula::Atom(R, {x, y}), Formula::True()));
  FormulaPtr nnf = ToNnf(f);
  ASSERT_EQ(nnf->kind(), FormulaKind::kCount);
  EXPECT_FALSE(nnf->count_at_least());
  EXPECT_EQ(nnf->count(), 2u);

  FormulaPtr g = Formula::Not(
      Formula::CountQ(false, 3, y, Formula::Atom(R, {x, y}), Formula::True()));
  FormulaPtr gn = ToNnf(g);
  ASSERT_EQ(gn->kind(), FormulaKind::kCount);
  EXPECT_TRUE(gn->count_at_least());
  EXPECT_EQ(gn->count(), 4u);
}

TEST_F(FormulaTest, NnfNegatedAtLeastZeroIsFalse) {
  FormulaPtr f = Formula::Not(
      Formula::CountQ(true, 0, y, Formula::Atom(R, {x, y}), Formula::True()));
  EXPECT_EQ(ToNnf(f)->kind(), FormulaKind::kFalse);
}

TEST_F(FormulaTest, SubstituteRenamesFreeOnly) {
  FormulaPtr f = Formula::Exists({z}, Formula::Atom(S, {y, z}),
                                 Formula::Atom(A, {z}));
  FormulaPtr g = SubstituteVars(f, {{y, x}, {z, x}});
  // y -> x applies; z is bound so stays.
  EXPECT_EQ(g->guard()->args()[0], x);
  EXPECT_EQ(g->guard()->args()[1], z);
  EXPECT_EQ(g->body()->args()[0], z);
}

TEST_F(FormulaTest, EqualsIsStructural) {
  FormulaPtr f1 = Formula::And(Formula::Atom(A, {x}), Formula::Atom(A, {y}));
  FormulaPtr f2 = Formula::And(Formula::Atom(A, {x}), Formula::Atom(A, {y}));
  FormulaPtr f3 = Formula::And(Formula::Atom(A, {y}), Formula::Atom(A, {x}));
  EXPECT_TRUE(f1->Equals(*f2));
  EXPECT_FALSE(f1->Equals(*f3));
}

TEST_F(FormulaTest, AndOrFlattenTrivialCases) {
  EXPECT_EQ(Formula::And(std::vector<FormulaPtr>{})->kind(),
            FormulaKind::kTrue);
  EXPECT_EQ(Formula::Or(std::vector<FormulaPtr>{})->kind(),
            FormulaKind::kFalse);
  FormulaPtr a = Formula::Atom(A, {x});
  EXPECT_EQ(Formula::And(std::vector<FormulaPtr>{a}), a);
}

TEST_F(FormulaTest, PointerEqualityIsStructuralEquality) {
  // The hash-consing contract: factories return the canonical node, so ==
  // on FormulaPtr decides structural equality, and the retained
  // StructuralEquals reference agrees in both directions.
  FormulaPtr f1 = Formula::And(Formula::Atom(A, {x}), Formula::Atom(A, {y}));
  FormulaPtr f2 = Formula::And(Formula::Atom(A, {x}), Formula::Atom(A, {y}));
  FormulaPtr f3 = Formula::And(Formula::Atom(A, {y}), Formula::Atom(A, {x}));
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);
  EXPECT_TRUE(f1->StructuralEquals(*f2));
  EXPECT_FALSE(f1->StructuralEquals(*f3));
  EXPECT_EQ(f1->id(), f2->id());
  EXPECT_NE(f1->id(), f3->id());
}

TEST_F(FormulaTest, MemoizedAttributesMatchStructure) {
  FormulaPtr f = Formula::Exists({z}, Formula::Atom(S, {y, z}),
                                 Formula::Not(Formula::Atom(A, {z})));
  EXPECT_EQ(f->FreeVars(), (std::vector<uint32_t>{y}));
  EXPECT_EQ(f->AllVars(), (std::vector<uint32_t>{y, z}));
  EXPECT_EQ(f->Relations(), (std::vector<uint32_t>{A, S}));
  EXPECT_EQ(f->MaxAtomArity(), 2u);
  EXPECT_FALSE(f->UsesEquality());
  EXPECT_FALSE(f->UsesCounting());
  FormulaPtr g = Formula::Forall({y}, Formula::Eq(y, y),
                                 Formula::CountQ(true, 2, z,
                                                 Formula::Atom(S, {y, z}),
                                                 Formula::True()));
  EXPECT_TRUE(g->UsesEquality());  // quantifier equality guard counts
  EXPECT_TRUE(g->UsesCounting());
}

TEST_F(FormulaTest, DeepChainsAreStackSafe) {
  // Regression: FreeVars/Depth/ToNnf/Validate used to recurse (and
  // shared_ptr teardown of a ~100k-deep chain recursed too). All of them
  // are now iterative or O(1) memoized reads, and arena nodes are never
  // destroyed recursively.
  constexpr int kDepth = 100000;
  FormulaPtr f = Formula::Atom(A, {x});
  for (int i = 0; i < kDepth; ++i) f = Formula::Not(f);
  EXPECT_EQ(f->Depth(), 0);
  EXPECT_EQ(f->FreeVars(), (std::vector<uint32_t>{x}));
  EXPECT_TRUE(ValidateGuarded(*f, *sym).ok());

  // Rebuilding the same chain is 100k intern hits ending in the same node.
  FormulaPtr f2 = Formula::Atom(A, {x});
  for (int i = 0; i < kDepth; ++i) f2 = Formula::Not(f2);
  EXPECT_EQ(f, f2);

  // A chain differing only at the leaf drives the iterative deep compare
  // through all 100k levels.
  FormulaPtr g = Formula::Atom(A, {y});
  for (int i = 0; i < kDepth; ++i) g = Formula::Not(g);
  EXPECT_FALSE(f->StructuralEquals(*g));
  EXPECT_TRUE(f->StructuralEquals(*f2));

  // NNF of the chain collapses double negations pairwise, iteratively.
  FormulaPtr nnf = ToNnf(f);
  EXPECT_EQ(nnf, Formula::Atom(A, {x}));  // kDepth is even

  // Long And-chains (left-leaning comb) are safe too.
  FormulaPtr comb = Formula::Atom(A, {x});
  for (int i = 0; i < kDepth; ++i) {
    comb = Formula::And(comb, Formula::Atom(A, {y}));
  }
  EXPECT_EQ(comb->Depth(), 0);
  EXPECT_EQ(comb->FreeVars(), (std::vector<uint32_t>{x, y}));
  EXPECT_TRUE(ValidateGuarded(*comb, *sym).ok());
}

TEST_F(FormulaTest, PrinterRoundTripShape) {
  FormulaPtr body = Formula::Or(
      Formula::Atom(A, {x}),
      Formula::Exists({z}, Formula::Atom(S, {y, z}), Formula::True()));
  std::string text = FormulaToString(*body, *sym);
  EXPECT_NE(text.find("A(x)"), std::string::npos);
  EXPECT_NE(text.find("exists z"), std::string::npos);
}

}  // namespace
}  // namespace gfomq
