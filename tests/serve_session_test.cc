#include "serve/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "logic/parser.h"
#include "query/cq.h"
#include "serve/plan.h"

namespace gfomq::serve {
namespace {

PlanOptions Pinned(PlanBackend backend) {
  PlanOptions o;
  o.force_backend = backend;
  return o;
}

std::shared_ptr<OmqPlan> MustCompile(const std::string& onto_text,
                                     const SymbolsPtr& sym,
                                     PlanOptions opts) {
  auto onto = ParseOntology(onto_text, sym);
  EXPECT_TRUE(onto.ok()) << onto.status().ToString();
  auto plan = OmqPlan::Compile(*onto, opts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

Ucq MustUcq(const std::string& text, const SymbolsPtr& sym) {
  auto q = ParseUcq(text, sym);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

/// From-scratch reference: a fresh engine over the compiled rewriting,
/// evaluated on the session's current base. Incremental answers must be
/// bit-identical to this on every step.
std::set<std::vector<ElemId>> Scratch(const CompiledQuery& cq,
                                      const Instance& db) {
  DatalogEngine engine(cq.program);
  return engine.GoalTuples(db);
}

TEST(OmqPlanTest, ClassifiedHornOntologyCompiles) {
  SymbolsPtr sym = MakeSymbols();
  // Tiny Horn ontology: the meta decision runs for real ("classify once").
  auto plan = MustCompile(
      "forall x . (A(x) -> B(x)); forall x . (B(x) -> C(x));", sym, {});
  // PTIME verdicts pin the Datalog backend; an exhausted budget falls back
  // to the (always complete) tableau. Either way the mapping must hold.
  if (plan->verdict().ptime == Certainty::kYes) {
    EXPECT_EQ(plan->backend(), PlanBackend::kDatalogRewrite);
  } else if (plan->verdict().ptime == Certainty::kNo) {
    EXPECT_EQ(plan->backend(), PlanBackend::kTableau);
  } else {
    EXPECT_EQ(plan->backend(), plan->options().unknown_backend);
  }
  EXPECT_GT(plan->compile_micros(), 0u);
}

TEST(OmqPlanTest, ForcedBackendSkipsMetaDecision) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  EXPECT_EQ(plan->backend(), PlanBackend::kDatalogRewrite);
  EXPECT_EQ(plan->verdict().ptime, Certainty::kUnknown);
  EXPECT_EQ(plan->verdict().bouquets_checked, 0u);
}

TEST(OmqPlanTest, QueryCompilationsAreMemoized) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto c1 = plan->CompileQuery(q);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  auto c2 = plan->CompileQuery(q);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1->get(), c2->get());  // the same interned artifact
  EXPECT_EQ(plan->query_compilations(), 1u);
  EXPECT_EQ(plan->query_cache_hits(), 1u);
}

TEST(PlanCacheTest, SameOntologyTextSharesOnePlan) {
  SymbolsPtr sym = MakeSymbols();
  const std::string text = "forall x . (A(x) -> B(x));";
  auto o1 = ParseOntology(text, sym);
  auto o2 = ParseOntology(text, sym);
  ASSERT_TRUE(o1.ok() && o2.ok());
  PlanCache cache(Pinned(PlanBackend::kDatalogRewrite));
  auto p1 = cache.GetOrCompile(*o1);
  auto p2 = cache.GetOrCompile(*o2);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ((*p1)->id(), (*p2)->id());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, FingerprintSeparatesSymbolTables) {
  // Identical text over distinct symbol tables must NOT share a plan: the
  // compiled rewritings carry table-relative relation ids.
  SymbolsPtr s1 = MakeSymbols();
  SymbolsPtr s2 = MakeSymbols();
  auto o1 = ParseOntology("forall x . (A(x) -> B(x));", s1);
  auto o2 = ParseOntology("forall x . (A(x) -> B(x));", s2);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_NE(PlanCache::Fingerprint(*o1), PlanCache::Fingerprint(*o2));
}

TEST(ServeSessionTest, AssertOnlyIncrementalMatchesScratch) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));", sym,
      Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto compiled = plan->CompileQuery(q);
  ASSERT_TRUE(compiled.ok());

  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", q).ok());
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));

  Rng rng(11);
  std::vector<ElemId> es;
  for (int i = 0; i < 8; ++i) {
    es.push_back(session.AddConstant("c" + std::to_string(i)));
  }
  for (int step = 0; step < 40; ++step) {
    if (rng.Chance(0.5)) {
      session.Assert(Fact{R, {es[rng.Below(es.size())],
                              es[rng.Below(es.size())]}});
    } else {
      session.Assert(Fact{A, {es[rng.Below(es.size())]}});
    }
    auto got = session.Answers("q");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, Scratch(**compiled, session.db())) << "step " << step;
  }
  // One from-scratch fixpoint at view init; everything after was delta.
  EXPECT_EQ(session.stats().full_evaluations, 1u);
  EXPECT_GT(session.stats().incremental_refreshes, 0u);
  EXPECT_EQ(session.stats().dred_rounds, 0u);
}

TEST(ServeSessionTest, RetractionDredMatchesScratch) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile(
      "forall x, y (R(x,y) -> A(x)); forall x . (A(x) -> B(x));"
      "forall x, y (S(x,y) -> B(y));",
      sym, Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto compiled = plan->CompileQuery(q);
  ASSERT_TRUE(compiled.ok());

  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", q).ok());
  uint32_t R = static_cast<uint32_t>(sym->FindRel("R"));
  uint32_t S = static_cast<uint32_t>(sym->FindRel("S"));
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));

  Rng rng(23);
  std::vector<ElemId> es;
  for (int i = 0; i < 6; ++i) {
    es.push_back(session.AddConstant("d" + std::to_string(i)));
  }
  auto random_fact = [&]() -> Fact {
    switch (rng.Below(3)) {
      case 0:
        return Fact{R, {es[rng.Below(es.size())], es[rng.Below(es.size())]}};
      case 1:
        return Fact{S, {es[rng.Below(es.size())], es[rng.Below(es.size())]}};
      default:
        return Fact{A, {es[rng.Below(es.size())]}};
    }
  };
  // Warm-up population, then a seeded assert/retract storm with a
  // differential check after every delta.
  for (int i = 0; i < 15; ++i) session.Assert(random_fact());
  for (int step = 0; step < 60; ++step) {
    Fact f = random_fact();
    if (rng.Chance(0.45)) {
      session.Retract(f);
    } else {
      session.Assert(f);
    }
    auto got = session.Answers("q");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, Scratch(**compiled, session.db())) << "step " << step;
  }
  EXPECT_EQ(session.stats().full_evaluations, 1u);
  EXPECT_GT(session.stats().dred_rounds, 0u);
  EXPECT_GT(session.stats().retracts, 0u);
}

TEST(ServeSessionTest, RetractThenReassertRoundTrips) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto compiled = plan->CompileQuery(q);
  ASSERT_TRUE(compiled.ok());
  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", q).ok());
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  ElemId a = session.AddConstant("a");
  ElemId b = session.AddConstant("b");
  session.Assert(Fact{A, {a}});
  session.Assert(Fact{A, {b}});
  auto initial = session.Answers("q");
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial->size(), 2u);

  // Retract, observe, re-assert, observe: both states must equal scratch.
  ASSERT_TRUE(*session.Retract(Fact{A, {a}}));
  auto afterRetract = session.Answers("q");
  ASSERT_TRUE(afterRetract.ok());
  EXPECT_EQ(afterRetract->size(), 1u);
  EXPECT_EQ(*afterRetract, Scratch(**compiled, session.db()));

  ASSERT_TRUE(*session.Assert(Fact{A, {a}}));
  auto roundTrip = session.Answers("q");
  ASSERT_TRUE(roundTrip.ok());
  EXPECT_EQ(*roundTrip, *initial);
  EXPECT_EQ(*roundTrip, Scratch(**compiled, session.db()));

  // Retract-then-reassert *between* two syncs cancels entirely: the lazy
  // fold sees zero net delta and runs no maintenance round.
  uint64_t dred = session.stats().dred_rounds;
  uint64_t incr = session.stats().incremental_refreshes;
  ASSERT_TRUE(*session.Retract(Fact{A, {b}}));
  ASSERT_TRUE(*session.Assert(Fact{A, {b}}));
  auto unchanged = session.Answers("q");
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(*unchanged, *initial);
  EXPECT_EQ(session.stats().dred_rounds, dred);
  EXPECT_EQ(session.stats().incremental_refreshes, incr);
}

TEST(ServeSessionTest, RetractingDerivableFactKeepsItCertain) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  auto compiled = plan->CompileQuery(q);
  ASSERT_TRUE(compiled.ok());
  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", q).ok());
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  ElemId a = session.AddConstant("a");
  session.Assert(Fact{A, {a}});
  session.Assert(Fact{B, {a}});
  EXPECT_EQ(session.Answers("q")->size(), 1u);
  // B(a) leaves the base, but A(a) still derives it: the rederive pass
  // must restore the answer (matching from-scratch semantics).
  ASSERT_TRUE(*session.Retract(Fact{B, {a}}));
  auto got = session.Answers("q");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 1u);
  EXPECT_EQ(*got, Scratch(**compiled, session.db()));
}

TEST(ServeSessionTest, NoopDeltasAreCountedAndFree) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", MustUcq("q(x) :- B(x)", sym)).ok());
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  ElemId a = session.AddConstant("a");
  ElemId b = session.AddConstant("b");
  EXPECT_TRUE(*session.Assert(Fact{A, {a}}));
  uint64_t rev = session.revision();
  EXPECT_FALSE(*session.Assert(Fact{A, {a}}));   // already present
  EXPECT_FALSE(*session.Retract(Fact{A, {b}}));  // absent
  EXPECT_EQ(session.revision(), rev);  // no-ops leave the base untouched
  EXPECT_EQ(session.stats().noop_deltas, 2u);
  // Malformed facts are rejected, not aborted on.
  EXPECT_FALSE(session.Assert(Fact{A, {a, a}}).ok());
  EXPECT_FALSE(session.Assert(Fact{9999, {a}}).ok());
}

TEST(ServeSessionTest, TableauBackendMemoizesPerRevision) {
  SymbolsPtr sym = MakeSymbols();
  // A disjunctive ontology (properly coNP-flavored): A(x) -> B(x) | C(x),
  // so q(x) :- B(x) is not certain from A(a) alone, but B(a) in the base
  // makes it so.
  auto plan = MustCompile("forall x . (A(x) -> B(x) | C(x));", sym,
                          Pinned(PlanBackend::kTableau));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  Session session(plan);
  ASSERT_TRUE(session.RegisterQuery("q", q).ok());
  uint32_t A = static_cast<uint32_t>(sym->FindRel("A"));
  uint32_t B = static_cast<uint32_t>(sym->FindRel("B"));
  ElemId a = session.AddConstant("a");
  session.Assert(Fact{A, {a}});
  auto first = session.Answers("q");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->empty());  // the C(a) model refutes certainty
  EXPECT_EQ(session.stats().tableau_recomputes, 1u);
  // Same revision: served from the memo, no new tableau work.
  auto again = session.Answers("q");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session.stats().tableau_recomputes, 1u);
  EXPECT_EQ(session.stats().answer_cache_hits, 1u);
  // A delta invalidates the revision and recomputes.
  session.Assert(Fact{B, {a}});
  auto after = session.Answers("q");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
  EXPECT_EQ(session.stats().tableau_recomputes, 2u);
}

TEST(ServeSessionTest, QueryMemoSharedAcrossSessions) {
  SymbolsPtr sym = MakeSymbols();
  auto plan = MustCompile("forall x . (A(x) -> B(x));", sym,
                          Pinned(PlanBackend::kDatalogRewrite));
  Ucq q = MustUcq("q(x) :- B(x)", sym);
  Session s1(plan);
  Session s2(plan);
  ASSERT_TRUE(s1.RegisterQuery("q", q).ok());
  ASSERT_TRUE(s2.RegisterQuery("q", q).ok());
  EXPECT_EQ(plan->query_compilations(), 1u);
  EXPECT_EQ(plan->query_cache_hits(), 1u);
  EXPECT_EQ(s1.QueryNames(), std::vector<std::string>{"q"});
}

}  // namespace
}  // namespace gfomq::serve
