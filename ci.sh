#!/usr/bin/env bash
# CI driver: builds the three preset configurations and runs their test
# suites. The release preset runs everything; the asan preset re-runs
# everything under AddressSanitizer+UBSan; the tsan preset runs the
# concurrency suites (thread_pool_test, meta_parallel_test, the TermStore
# interning hammer, the or-parallel tableau differential/cancellation
# hammer, and the reduced-seed cross-engine fuzz sweep TableauFuzzTsan)
# under ThreadSanitizer to certify the work-stealing pool, the parallel
# bouquet meta decision, the sharded hash-consing arena, and the
# or-parallel branch search. The trail-based tableau engine is serial by
# design (one mutable branch per trail, never shared across threads), so
# its tsan coverage is the fuzz sweep's serial trail passes racing only
# against the COW engines' pools. Extra gates: the `parallel` ctest label
# (the whole concurrency tier) is re-run as one batch on release, and the
# fixed-seed `fuzz` label (the 500-seed cross-engine differential sweep)
# runs as its own release batch; the index-layer differential suite
# (indexed matcher/engine vs the naive reference, the parallel-vs-serial
# and trail-vs-COW tableau differentials) is re-run
# explicitly under asan; the perf-trajectory files BENCH_datalog.json and
# BENCH_terms.json are regenerated and schema-checked against their
# bench/*.expected_keys so trajectory tooling never sees a silently
# drifted format (BENCH_terms must additionally show a nonzero intern hit
# rate, and BENCH_tableau.json — written by both tiling_runfit and
# meta_decision — is schema-checked after each writer, with the bouquet
# family additionally required to show a nonzero consistency-cache hit
# rate and every point required to report parallel and trail verdicts
# identical to the serial engine's, and the pigeonhole rows additionally
# required to show the trail engine's COW-copy elimination and nonzero
# nogood pruning). BENCH_serving.json (the serving layer's trajectory
# file) is regenerated and schema-checked too; its run doubles as the
# release-tier smoke of the concurrent line-protocol driver and must show
# zero protocol errors, a nonzero plan-cache hit rate, incremental-vs-
# scratch speedup above 1, and differentially identical answers. The
# serving suites (ServeSession/ServeDriver/BenchJson) re-run under asan,
# and the concurrent driver hammer joins the tsan tier. The unified
# scheduler gets its own gates: the Scheduler suite (nested task-group
# drains, the same-group-Wait regression, the exactly-one-pool acceptance
# test) runs in the asan batch, under tsan, and as its own release tier
# (ctest -L scheduler); BENCH_scheduler.json — the cross-layer contention
# bench — is regenerated and schema-checked, and must report
# verdicts_identical=1, zero serve protocol errors, and exactly one pool
# per scheduler. BENCH_planner.json (the cost-based multi-backend planner
# bench) is regenerated and schema-checked; every row must report answers
# bit-identical to its family's differential reference, every family must
# show the planner beating the worst pinned backend, the FO fast path must
# beat the datalog fixpoint on the lookup family, and the planner must
# choose at least three distinct backends across the families. The planner
# suites (FoRewriter/CompiledUcq/CspSat/Planner*) join the asan batch and
# PlannerConcurrency joins the tsan filter. Finally, when clang-tidy is
# installed, the modernize/performance/bugprone profile in .clang-tidy
# runs over src/logic and src/reasoner.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

for preset in release asan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "=== [release] concurrency tier (ctest -L parallel) ==="
ctest --preset release -j "$JOBS" -L parallel

echo "=== [release] cross-engine fuzz tier (ctest -L fuzz) ==="
ctest --preset release -j "$JOBS" -L fuzz

echo "=== [asan] differential suite (indexed vs naive reference) ==="
ctest --preset asan -j "$JOBS" \
  -R 'IndexedMatchesNaive|IndexedEngineMatchesNaive|RandomizedIndexMaintenance|SemiNaiveMatchesNaive|TableauDifferential|TableauParallel|TableauTrail|TableauFuzzTsan|ConsistencyCache|ServeSession|ServeDriver|BenchJson|Scheduler|FoRewriter|CompiledUcq|CspSat|Planner'

echo "=== [release] scheduler tier (ctest -L scheduler) ==="
ctest --preset release -j "$JOBS" -L scheduler

echo "=== perf trajectory: BENCH_datalog.json schema ==="
(cd build-release && ./bench/datalog_rewriting --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_datalog.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_datalog.expected_keys "$keys_tmp"; then
  echo "BENCH_datalog.json key schema drifted;" \
       "update bench/BENCH_datalog.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"

echo "=== perf trajectory: BENCH_terms.json schema ==="
(cd build-release && ./bench/fig1_landscape --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_terms.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_terms.expected_keys "$keys_tmp"; then
  echo "BENCH_terms.json key schema drifted;" \
       "update bench/BENCH_terms.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"
if ! grep -o '"formula_hit_rate": [0-9.e+-]*' build-release/BENCH_terms.json \
    | awk '{ exit !($2 > 0) }'; then
  echo "BENCH_terms.json: formula intern hit rate is zero —" \
       "hash consing is not deduplicating" >&2
  exit 1
fi

check_tableau_schema() {
  keys_tmp="$(mktemp)"
  grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_tableau.json \
    | tr -d '":' | sort -u > "$keys_tmp"
  if ! diff -u bench/BENCH_tableau.expected_keys "$keys_tmp"; then
    echo "BENCH_tableau.json key schema drifted ($1);" \
         "update bench/BENCH_tableau.expected_keys" >&2
    rm -f "$keys_tmp"
    exit 1
  fi
  rm -f "$keys_tmp"
}

echo "=== perf trajectory: BENCH_tableau.json schema (tiling_runfit) ==="
(cd build-release && ./bench/tiling_runfit --benchmark_filter=_none_ >/dev/null)
check_tableau_schema tiling_runfit

echo "=== perf trajectory: BENCH_tableau.json schema (meta_decision) ==="
(cd build-release && ./bench/meta_decision --benchmark_filter=_none_ >/dev/null)
check_tableau_schema meta_decision
if ! grep -o '"cache_hit_rate": [0-9.e+-]*' build-release/BENCH_tableau.json \
    | awk 'BEGIN { ok = 1 } { if ($2 <= 0) ok = 0 } END { exit !ok }'; then
  echo "BENCH_tableau.json: a bouquet-family point has zero consistency" \
       "cache hit rate — the chase memo is not being shared" >&2
  exit 1
fi
if ! grep -o '"verdicts_identical": [01]' build-release/BENCH_tableau.json \
    | awk 'BEGIN { ok = 1 } { if ($2 != 1) ok = 0 } END { exit !ok }'; then
  echo "BENCH_tableau.json: engine verdicts diverge from the naive" \
       "differential reference" >&2
  exit 1
fi
if ! grep -o '"parallel_verdicts_identical": [01]' \
    build-release/BENCH_tableau.json \
    | awk 'BEGIN { ok = 1 } { if ($2 != 1) ok = 0 } END { exit !ok }'; then
  echo "BENCH_tableau.json: or-parallel verdicts diverge from the serial" \
       "engine — cancellation or the shared budget broke determinism" >&2
  exit 1
fi
if ! grep -o '"trail_verdicts_identical": [01]' \
    build-release/BENCH_tableau.json \
    | awk 'BEGIN { ok = 1 } { if ($2 != 1) ok = 0 } END { exit !ok }'; then
  echo "BENCH_tableau.json: trail-engine verdicts diverge from the COW" \
       "engine — destructive backtracking or nogood pruning is unsound" >&2
  exit 1
fi
# The trail engine's raison d'être on the branch-heavy family: destructive
# backtracking must eliminate every COW clone, and learned nogoods must
# actually prune sibling colorings.
if ! grep '"family": "pigeonhole"' build-release/BENCH_tableau.json \
    | grep -o '"trail_cow_copies": [0-9]*' \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 0) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_tableau.json: a pigeonhole trail pass materialized COW" \
       "copies — destructive branching is cloning instances" >&2
  exit 1
fi
if ! grep '"family": "pigeonhole"' build-release/BENCH_tableau.json \
    | grep -o '"nogood_prunes": [0-9]*' \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 <= 0) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_tableau.json: a pigeonhole trail pass pruned no branches —" \
       "nogood learning is not firing" >&2
  exit 1
fi

echo "=== perf trajectory: BENCH_serving.json schema (serving) ==="
(cd build-release && ./bench/serving --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_serving.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_serving.expected_keys "$keys_tmp"; then
  echo "BENCH_serving.json key schema drifted;" \
       "update bench/BENCH_serving.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"
# The serving run doubles as the release-tier smoke of the concurrent
# driver: every point must finish with zero protocol errors, plans must
# actually be reused across sessions, the incremental sessions must beat
# per-delta from-scratch evaluation, and their answers must be
# bit-identical to it on every delta.
if ! grep -o '"errors": [0-9]*' build-release/BENCH_serving.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 0) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_serving.json: a serving sweep point recorded protocol" \
       "errors — the concurrent driver smoke failed" >&2
  exit 1
fi
if ! grep -o '"plan_cache_hit_rate": [0-9.e+-]*' \
    build-release/BENCH_serving.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 <= 0) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_serving.json: a sweep point has zero plan-cache hit rate —" \
       "sessions are recompiling instead of sharing compiled plans" >&2
  exit 1
fi
if ! grep -o '"incremental_speedup": [0-9.e+-]*' \
    build-release/BENCH_serving.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 <= 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_serving.json: incremental maintenance is not beating" \
       "from-scratch evaluation on the delta family" >&2
  exit 1
fi
if ! grep -o '"answers_identical": [01]' build-release/BENCH_serving.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_serving.json: incremental answers diverge from the" \
       "from-scratch reference — SaturateDelta/DRed is unsound" >&2
  exit 1
fi

echo "=== perf trajectory: BENCH_scheduler.json schema (scheduler_contention) ==="
(cd build-release && ./bench/scheduler_contention --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_scheduler.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_scheduler.expected_keys "$keys_tmp"; then
  echo "BENCH_scheduler.json key schema drifted;" \
       "update bench/BENCH_scheduler.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"
# The contention run is the release-tier proof that sharing one pool is
# safe: every parallel verdict computed under cross-layer contention must
# equal the serial reference, and the serving traffic must finish with
# zero protocol errors.
if ! grep -o '"verdicts_identical": [01]' build-release/BENCH_scheduler.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_scheduler.json: verdicts under cross-layer contention" \
       "diverge from the serial reference" >&2
  exit 1
fi
if ! grep -o '"serve_errors": [0-9]*' build-release/BENCH_scheduler.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 0) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_scheduler.json: serving traffic recorded protocol errors" \
       "while sharing the pool with the reasoning layers" >&2
  exit 1
fi
# At least one pool must have been created and exactly one per scheduler:
# a pools_created != 1 here means a layer snuck a private pool back in.
if ! grep -o '"pools_created": [0-9]*' build-release/BENCH_scheduler.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_scheduler.json: the shared scheduler reports a pool count" \
       "other than one" >&2
  exit 1
fi

echo "=== perf trajectory: BENCH_planner.json schema (planner) ==="
(cd build-release && ./bench/planner --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_planner.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_planner.expected_keys "$keys_tmp"; then
  echo "BENCH_planner.json key schema drifted;" \
       "update bench/BENCH_planner.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"
# The planner run is the release-tier proof of the backend lattice: every
# backend's answers on every family must be bit-identical to the family's
# reference run, the planner must beat the worst pinned backend on every
# family, the FO fast path must beat the datalog fixpoint it replaces on
# the lookup family, and the planner must actually exercise the lattice
# (at least three distinct backends chosen across the families).
if ! grep -o '"answers_identical": [01]' build-release/BENCH_planner.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_planner.json: a backend's answers diverge from the" \
       "family's differential reference" >&2
  exit 1
fi
if ! grep -o '"planner_speedup": [0-9.e+-]*' build-release/BENCH_planner.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 <= 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_planner.json: the planner is not beating the worst pinned" \
       "backend on every family" >&2
  exit 1
fi
if ! grep -o '"fo_beats_datalog": [01]' build-release/BENCH_planner.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 != 1) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_planner.json: the FO fast path is not beating the datalog" \
       "fixpoint on the lookup family" >&2
  exit 1
fi
if ! grep -o '"distinct_backends": [0-9]*' build-release/BENCH_planner.json \
    | awk 'BEGIN { ok = 1; n = 0 } { n++; if ($2 < 3) ok = 0 } \
           END { exit !(ok && n > 0) }'; then
  echo "BENCH_planner.json: the planner chose fewer than three distinct" \
       "backends — the lattice is not being exercised" >&2
  exit 1
fi

echo "=== clang-tidy (modernize, performance, bugprone) ==="
if command -v clang-tidy >/dev/null 2>&1; then
  clang-tidy -p build-release --quiet src/logic/*.cc src/reasoner/*.cc
else
  echo "clang-tidy not installed; skipping static-analysis step"
fi

echo "ci.sh: all presets green"
