#!/usr/bin/env bash
# CI driver: builds the three preset configurations and runs their test
# suites. The release preset runs everything; the asan preset re-runs
# everything under AddressSanitizer+UBSan; the tsan preset runs the
# concurrency suites (thread_pool_test, meta_parallel_test) under
# ThreadSanitizer to certify the work-stealing pool and the parallel
# bouquet meta decision. Two extra gates cover the index layer: the
# differential suite (indexed matcher/engine vs the naive reference) is
# re-run explicitly under asan, and the perf-trajectory file
# BENCH_datalog.json is regenerated and schema-checked against
# bench/BENCH_datalog.expected_keys so trajectory tooling never sees a
# silently drifted format.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

for preset in release asan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "=== [asan] differential suite (indexed vs naive reference) ==="
ctest --preset asan -j "$JOBS" \
  -R 'IndexedMatchesNaive|IndexedEngineMatchesNaive|RandomizedIndexMaintenance|SemiNaiveMatchesNaive'

echo "=== perf trajectory: BENCH_datalog.json schema ==="
(cd build-release && ./bench/datalog_rewriting --benchmark_filter=_none_ >/dev/null)
keys_tmp="$(mktemp)"
grep -o '"[A-Za-z_][A-Za-z0-9_]*":' build-release/BENCH_datalog.json \
  | tr -d '":' | sort -u > "$keys_tmp"
if ! diff -u bench/BENCH_datalog.expected_keys "$keys_tmp"; then
  echo "BENCH_datalog.json key schema drifted;" \
       "update bench/BENCH_datalog.expected_keys" >&2
  rm -f "$keys_tmp"
  exit 1
fi
rm -f "$keys_tmp"

echo "ci.sh: all presets green"
