#!/usr/bin/env bash
# CI driver: builds the three preset configurations and runs their test
# suites. The release preset runs everything; the asan preset re-runs
# everything under AddressSanitizer+UBSan; the tsan preset runs the
# concurrency suites (thread_pool_test, meta_parallel_test) under
# ThreadSanitizer to certify the work-stealing pool and the parallel
# bouquet meta decision.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

for preset in release asan tsan; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "=== [$preset] test ==="
  ctest --preset "$preset" -j "$JOBS"
done

echo "ci.sh: all presets green"
