// Theorem 8 in action: graph 2-colorability as ontology-mediated querying.
// The template K2 is encoded into a uGF2(1,=) ontology whose consistency
// on the encoded input coincides with 2-colorability; the colour choice is
// invisible to (in)equality-free queries.
//
// Build & run:  ./build/examples/csp_demo

#include <cstdio>

#include "csp/csp.h"
#include "logic/printer.h"
#include "reasoner/certain.h"

using namespace gfomq;

namespace {

Instance SymmetricCycle(SymbolsPtr sym, int n) {
  Instance d(sym);
  uint32_t e_rel = sym->Rel("E", 2);
  std::vector<ElemId> es;
  for (int i = 0; i < n; ++i) {
    es.push_back(d.AddConstant("v" + std::to_string(n) + "_" +
                               std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    ElemId u = es[static_cast<size_t>(i)];
    ElemId v = es[static_cast<size_t>((i + 1) % n)];
    d.AddFact(e_rel, {u, v});
    d.AddFact(e_rel, {v, u});
  }
  return d;
}

}  // namespace

int main() {
  SymbolsPtr sym = MakeSymbols();
  // Template: K2 with a symmetric edge (2-coloring).
  Instance k2(sym);
  uint32_t e_rel = sym->Rel("E", 2);
  ElemId c0 = k2.AddConstant("white");
  ElemId c1 = k2.AddConstant("black");
  k2.AddFact(e_rel, {c0, c1});
  k2.AddFact(e_rel, {c1, c0});

  auto enc = EncodeTemplate(k2, CspEncodingVariant::kEquality);
  if (!enc.ok()) {
    std::printf("%s\n", enc.status().ToString().c_str());
    return 1;
  }
  std::printf("Theorem 8 ontology O(K2) in uGF2(1,=):\n%s\n",
              OntologyToString(enc->ontology).c_str());

  auto solver = CertainAnswerSolver::Create(enc->ontology);
  if (!solver.ok()) return 1;

  for (int n : {4, 5, 6, 7}) {
    Instance graph = SymmetricCycle(sym, n);
    bool colorable = SolveCsp(graph, enc->templ);
    Certainty consistent = solver->IsConsistent(enc->EncodeInput(graph));
    std::printf(
        "C%-2d  2-colorable: %-3s   encoded instance consistent: %-3s   %s\n",
        n, colorable ? "yes" : "NO",
        consistent == Certainty::kYes ? "yes" : "NO",
        colorable == (consistent == Certainty::kYes) ? "(agrees)"
                                                     : "(MISMATCH!)");
  }
  std::printf(
      "\nBoth reduction directions of Definition 4 validated: the OMQ is\n"
      "polynomially equivalent to coCSP(K2).\n");
  return 0;
}
