// Interactive front end for the serving layer: a line-protocol REPL over
// ServeDriver (see src/serve/driver.h for the command set). Usage:
//
//   ./serve_repl [--tableau-unknown]
//   > ontology O forall x . (A(x) -> B(x));
//   > session s O
//   > query s q q(x) :- B(x)
//   > assert s A(alice)
//   > answers s q
//   > stats
//   > quit
//
// By default unknown classifications fall back to the tableau backend;
// pipe a script in for batch use: ./serve_repl < script.txt

#include <cstring>
#include <iostream>

#include "serve/driver.h"

int main(int argc, char** argv) {
  gfomq::serve::DriverOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--datalog-unknown") == 0) {
      // Serve unknown-classification ontologies from the Datalog rewriter
      // (sound only inside the rewritable fragments — operator's choice).
      options.plan.unknown_backend =
          gfomq::serve::PlanBackend::kDatalogRewrite;
    }
  }
  gfomq::serve::ServeDriver driver(options);
  driver.Serve(std::cin, std::cout);
  return 0;
}
