// Classifies ontologies against the dichotomy landscape of Figure 1 and —
// for ontologies inside a dichotomy fragment — runs the bouquet-based meta
// decision of Theorem 13 (PTIME vs coNP-hard query evaluation).
//
// Usage:
//   ./build/examples/classify_ontology            # classify the built-ins
//   ./build/examples/classify_ontology file.ugf   # classify a file
//
// File syntax: see ParseOntology in src/logic/parser.h.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/engine.h"
#include "logic/parser.h"

using namespace gfomq;

namespace {

void Classify(const std::string& name, const std::string& text) {
  std::printf("=== %s ===\n%s\n", name.c_str(), text.c_str());
  auto onto = ParseOntology(text);
  if (!onto.ok()) {
    std::printf("parse error: %s\n\n", onto.status().ToString().c_str());
    return;
  }
  EngineOptions opts;
  opts.bouquet.max_outdegree = 2;
  auto engine = OmqEngine::Create(*onto, opts);
  if (!engine.ok()) {
    std::printf("%s\n\n", engine.status().ToString().c_str());
    return;
  }
  OmqVerdict verdict = engine->Classify();
  std::printf("%s\n", verdict.Summary(*onto->symbols).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::printf("cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Classify(argv[1], text.str());
    return 0;
  }
  Classify("Horn subsumption (uGF-(1): dichotomy, PTIME)",
           "forall x . (A(x) -> B(x));\n"
           "forall x, y (R(x,y) -> (B(x) -> B(y)));");
  Classify("Covering disjunction (dichotomy fragment, coNP-hard ontology)",
           "forall x . (A(x) -> B1(x) | B2(x));");
  Classify("Example 2 of the paper (uGF(1))",
           "forall x, y (R(x,y) -> A(x) | exists z (S(y,z)));");
  Classify("Equality outside the dichotomy zone (uGF2(1,=): CSP-hard)",
           "forall x, y (G(x,y) -> exists y (R(x,y) & !(x = y)));");
  Classify("Functions at depth 2 (uGF-2(2,f): no dichotomy)",
           "func F;\n"
           "forall x . (A(x) -> exists y (R(x,y) & exists x (F(y,x))));");
  return 0;
}
