// Quickstart: the paper's introductory example. A hand has exactly five
// fingers (O1); some finger is a thumb (O2). Each ontology alone admits
// PTIME query evaluation; their union is coNP-hard — witnessed by a
// disjunction-property violation (Theorem 17 / Theorem 3).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "reasoner/materializability.h"

using namespace gfomq;

int main() {
  SymbolsPtr sym = MakeSymbols();

  auto o1 = ParseOntology(
      "forall x . (Hand(x) -> exists>=5 y (hasFinger(x,y)) & "
      "exists<=5 y (hasFinger(x,y)));",
      sym);
  auto o2 = ParseOntology(
      "forall x . (Hand(x) -> exists y (hasFinger(x,y) & Thumb(y)));", sym);
  if (!o1.ok() || !o2.ok()) {
    std::printf("parse error\n");
    return 1;
  }
  Ontology both = Ontology::Union(*o1, *o2);
  std::printf("O1 u O2:\n%s\n", OntologyToString(both).c_str());

  auto engine = OmqEngine::Create(both);
  if (!engine.ok()) {
    std::printf("%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // A hand with five named fingers.
  Instance d(sym);
  ElemId h = d.AddConstant("hand");
  d.AddFact(static_cast<uint32_t>(sym->FindRel("Hand")), {h});
  uint32_t has_finger = static_cast<uint32_t>(sym->FindRel("hasFinger"));
  std::vector<ElemId> fingers;
  for (int i = 1; i <= 5; ++i) {
    ElemId f = d.AddConstant("f" + std::to_string(i));
    fingers.push_back(f);
    d.AddFact(has_finger, {h, f});
  }
  std::printf("instance: %s\n\n", d.ToString().c_str());

  // Certain answers.
  auto q_thumb = ParseCq("q(x) :- hasFinger(x,y), Thumb(y)", sym);
  auto q_which = ParseCq("q(y) :- Thumb(y)", sym);
  std::printf("Is 'hand has a thumb among its fingers' certain? %s\n",
              engine->IsCertain(d, Ucq::Single(*q_thumb), {h}) ==
                      Certainty::kYes
                  ? "YES"
                  : "no");
  for (ElemId f : fingers) {
    std::printf("Is 'finger %s is the thumb' certain? %s\n",
                d.ElemName(f).c_str(),
                engine->IsCertain(d, Ucq::Single(*q_which), {f}) ==
                        Certainty::kYes
                    ? "YES"
                    : "no");
  }

  // The certain disjunction with no certain disjunct = the paper's
  // coNP-hardness witness.
  std::vector<std::pair<Ucq, std::vector<ElemId>>> disjuncts;
  for (ElemId f : fingers) {
    disjuncts.push_back({Ucq::Single(*q_which), {f}});
  }
  Certainty violated = engine->solver().HasDisjunctionViolation(d, disjuncts);
  std::printf(
      "\nDisjunction-property violation (=> O1 u O2 is coNP-hard): %s\n",
      violated == Certainty::kYes ? "FOUND" : "not found");
  return 0;
}
