// Reproduces the shape of the paper's BioPortal analysis (introduction):
// of 411 repository ontologies, 405 fall within ALCHIF at depth <= 2 (a
// dichotomy fragment) and 385 within ALCHIQ at depth 1. BioPortal itself
// is not distributable; per DESIGN.md the corpus is synthetic, calibrated
// to those proportions, and the *census pipeline* is the deliverable.
//
// Build & run:  ./build/examples/bioportal_report [seed] [count]

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus.h"
#include "dl/translate.h"
#include "fragments/fragments.h"

using namespace gfomq;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2017;
  int count = argc > 2 ? std::atoi(argv[2]) : 411;

  std::vector<DlOntology> corpus = GenerateCorpus(seed, count);
  CorpusReport report = AnalyzeCorpus(corpus);
  std::printf("synthetic BioPortal-like corpus (seed %llu)\n\n%s\n",
              static_cast<unsigned long long>(seed),
              report.ToString().c_str());
  std::printf("paper reference: 411 total, 405 ALCHIF depth<=2, "
              "385 ALCHIQ depth 1\n\n");

  std::printf("family breakdown:\n");
  for (const auto& [family, n] : report.by_family) {
    std::printf("  %-24s %d\n", family.c_str(), n);
  }

  // Show one ontology end to end: census, translation, classification.
  const DlOntology& sample = corpus[0];
  std::printf("\nsample ontology:\n%s",
              DlOntologyToString(sample).c_str());
  DlFeatures f = sample.Census();
  std::printf("family: %s, depth %d\n", f.FamilyName().c_str(), f.depth);
  std::printf("verdict: %s\n", ClassifyDl(f).ToString().c_str());
  auto guarded = TranslateToGuarded(sample);
  if (guarded.ok()) {
    std::printf("guarded translation: %zu sentences, depth %d\n",
                guarded->sentences.size(), guarded->Depth());
  }
  return 0;
}
